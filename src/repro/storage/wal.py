"""Write-ahead log for the persistent database facade.

Checkpoints (full :func:`~repro.storage.persist.save_manager` snapshots)
are expensive; the WAL makes individual updates durable between them.
Each record describes one logical update; recovery replays the log over
the last snapshot through the ordinary maintenance path, which is
deterministic (node-id allocation is a plain counter restored by the
snapshot, so replayed structural updates re-create identical nids).

Record wire format: ``u8`` record type, then type-specific fields —
varint integers and varint-length-prefixed UTF-8 strings.  The file
carries the standard ``RXDB`` header.  A torn final record (crash mid
write) is detected and ignored.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from .format import (
    FormatError,
    decode_varint,
    encode_varint,
    read_header,
    write_header,
)

__all__ = [
    "WalRecord",
    "TEXT_UPDATE",
    "INSERT_XML",
    "DELETE_SUBTREE",
    "INSERT_ATTRIBUTE",
    "DELETE_ATTRIBUTE",
    "RENAME",
    "WriteAheadLog",
    "replay_records",
]

TEXT_UPDATE = 1
INSERT_XML = 2
DELETE_SUBTREE = 3
INSERT_ATTRIBUTE = 4
RENAME = 5
DELETE_ATTRIBUTE = 6

_KNOWN_TYPES = {
    TEXT_UPDATE,
    INSERT_XML,
    DELETE_SUBTREE,
    INSERT_ATTRIBUTE,
    RENAME,
    DELETE_ATTRIBUTE,
}


@dataclass(frozen=True)
class WalRecord:
    """One logged update.  Field use varies by ``kind``:

    * TEXT_UPDATE:      nid, text
    * INSERT_XML:       nid (parent), text (fragment), extra (before_nid + 1, 0 = none)
    * DELETE_SUBTREE:   nid
    * INSERT_ATTRIBUTE: nid (owner), name, text (value)
    * RENAME:           nid, name
    * DELETE_ATTRIBUTE: nid (replay re-checks the attribute node kind;
      logs from before this record kind carry DELETE_SUBTREE instead and
      still replay)
    """

    kind: int
    nid: int
    text: str = ""
    name: str = ""
    extra: int = 0


def _encode_string(value: str) -> bytes:
    data = value.encode("utf-8")
    return encode_varint(len(data)) + data


def _decode_string(payload: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(payload, offset)
    end = offset + length
    if end > len(payload):
        raise FormatError("truncated string")
    return payload[offset:end].decode("utf-8"), end


def encode_record(record: WalRecord) -> bytes:
    out = bytearray([record.kind])
    out += encode_varint(record.nid)
    out += _encode_string(record.text)
    out += _encode_string(record.name)
    out += encode_varint(record.extra)
    return bytes(out)


def decode_record(payload: bytes, offset: int) -> tuple[WalRecord, int]:
    kind = payload[offset]
    if kind not in _KNOWN_TYPES:
        raise FormatError(f"unknown WAL record type {kind}")
    offset += 1
    nid, offset = decode_varint(payload, offset)
    text, offset = _decode_string(payload, offset)
    name, offset = _decode_string(payload, offset)
    extra, offset = decode_varint(payload, offset)
    return WalRecord(kind, nid, text, name, extra), offset


class WriteAheadLog:
    """Append-only log file.

    Args:
        path: Log file path (created with a header when absent).
        sync: ``"none"`` (buffered), ``"flush"`` (flush per append) or
            ``"fsync"`` (flush + fsync per append).
        metrics: Optional :class:`repro.obs.MetricsRegistry`; appends
            and truncations are counted and append latency is timed.
    """

    def __init__(self, path: str, sync: str = "flush", metrics=None):
        if sync not in ("none", "flush", "fsync"):
            raise ValueError("sync must be 'none', 'flush' or 'fsync'")
        self.path = path
        self._sync = sync
        self._metrics = metrics
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._fh: BinaryIO = open(path, "ab")
        if fresh:
            write_header(self._fh)
            self._fh.flush()

    def _append(self, record: WalRecord) -> None:
        self._fh.write(encode_record(record))
        if self._sync != "none":
            self._fh.flush()
            if self._sync == "fsync":
                os.fsync(self._fh.fileno())

    def append(self, record: WalRecord) -> None:
        if self._metrics is None:
            self._append(record)
            return
        with self._metrics.timer("wal.append").time():
            self._append(record)
        self._metrics.counter("wal.appends").inc()

    def truncate(self) -> None:
        """Reset the log after a checkpoint."""
        self._fh.close()
        self._fh = open(self.path, "wb")
        write_header(self._fh)
        self._fh.flush()
        self._fh = open(self.path, "ab")
        if self._metrics is not None:
            self._metrics.counter("wal.truncates").inc()

    def close(self) -> None:
        self._fh.flush()
        self._fh.close()


def replay_records(path: str) -> Iterator[WalRecord]:
    """Read back all complete records; a torn tail is ignored."""
    if not os.path.exists(path):
        return
    with open(path, "rb") as fh:
        try:
            read_header(fh)
        except FormatError:
            return  # empty/garbage log: nothing to replay
        payload = fh.read()
    offset = 0
    while offset < len(payload):
        try:
            record, offset = decode_record(payload, offset)
        except (FormatError, IndexError):
            return  # torn final record from a crash mid-append
        yield record
