"""On-disk persistence for stores and index managers."""

from .format import FormatError
from .persist import load_manager, load_store, save_manager, save_store

__all__ = [
    "FormatError",
    "load_manager",
    "load_store",
    "save_manager",
    "save_store",
]
