"""On-disk persistence for stores and index managers."""

from .faults import CrashPlan, FaultInjector, InjectedCrash, injected
from .format import FormatError
from .persist import (
    load_manager,
    load_store,
    manifest_epoch,
    read_manifest,
    save_manager,
    save_store,
)

__all__ = [
    "CrashPlan",
    "FaultInjector",
    "FormatError",
    "InjectedCrash",
    "injected",
    "load_manager",
    "load_store",
    "manifest_epoch",
    "read_manifest",
    "save_manager",
    "save_store",
]
