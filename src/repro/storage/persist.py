"""Persistence: save/load stores and index managers to disk.

Layout of a database directory::

    MANIFEST.json        store metadata: documents, nid counter, index config
    <doc>.doc            one file per document (columns + heaps)
    <doc>.sidx           string-index hash column for the document
    <doc>.<type>.tidx    typed-index fragments for the document

The string and typed indices persist their per-node fields (the
expensive part: hashing/FSM over all text); their B-trees are
rebuilt by bulk load at open, and the optional substring index is
re-derived from the leaves.  Documents round-trip exactly.
"""

from __future__ import annotations

import io
import json
import os

from ..core.fsm.fragment import Fragment
from ..core.manager import IndexManager
from ..core.string_index import StringIndex
from ..core.typed_index import TypedIndex
from ..errors import ReproError
from ..xmldb.document import Document
from ..xmldb.store import Store
from .format import (
    FormatError,
    encode_varint,
    decode_varint,
    pack_array,
    read_header,
    read_sections,
    unpack_array,
    write_header,
    write_section,
)

__all__ = ["save_store", "load_store", "save_manager", "load_manager"]

_MANIFEST = "MANIFEST.json"


def _doc_filename(name: str) -> str:
    """A filesystem-safe file stem for a document name."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------


def _write_document(doc: Document, path: str) -> None:
    with open(path, "wb") as fh:
        write_header(fh)
        write_section(fh, "KIND", pack_array(doc.kind, "u1"))
        write_section(fh, "SIZE", pack_array(doc.size, "<u4"))
        write_section(fh, "LEVL", pack_array(doc.level, "<u2"))
        write_section(fh, "NAME", pack_array(doc.name_id, "<i4"))
        write_section(fh, "TEXT", pack_array(doc.text_id, "<i4"))
        write_section(fh, "NIDS", pack_array(doc.nid, "<u8"))
        write_section(fh, "PRNT", pack_array(doc.parent_nid, "<i8"))
        heap = io.BytesIO()
        offsets = []
        for text in doc.texts:
            offsets.append(heap.tell())
            heap.write(text.encode("utf-8"))
        offsets.append(heap.tell())
        write_section(fh, "HEAP", heap.getvalue())
        write_section(fh, "HOFF", pack_array(offsets, "<u8"))
        names = [doc.vocabulary.name_of(i) for i in range(len(doc.vocabulary))]
        vocab_blob = io.BytesIO()
        vocab_offsets = []
        for name in names:
            vocab_offsets.append(vocab_blob.tell())
            vocab_blob.write(name.encode("utf-8"))
        vocab_offsets.append(vocab_blob.tell())
        write_section(fh, "VOCB", vocab_blob.getvalue())
        write_section(fh, "VOFF", pack_array(vocab_offsets, "<u8"))
        write_section(fh, "SRCB", pack_array([doc.source_bytes], "<u8"))


def _read_document(name: str, path: str) -> Document:
    doc = Document(name)
    sections: dict[str, bytes] = {}
    with open(path, "rb") as fh:
        read_header(fh)
        for tag, payload in read_sections(fh):
            sections[tag] = payload
    required = {"KIND", "SIZE", "LEVL", "NAME", "TEXT", "NIDS", "PRNT",
                "HEAP", "HOFF", "VOCB", "VOFF"}
    missing = required - set(sections)
    if missing:
        raise FormatError(f"document file {path!r} missing {sorted(missing)}")
    doc.kind = unpack_array(sections["KIND"], "u1")
    doc.size = unpack_array(sections["SIZE"], "<u4")
    doc.level = unpack_array(sections["LEVL"], "<u2")
    doc.name_id = unpack_array(sections["NAME"], "<i4")
    doc.text_id = unpack_array(sections["TEXT"], "<i4")
    doc.nid = unpack_array(sections["NIDS"], "<u8")
    doc.parent_nid = unpack_array(sections["PRNT"], "<i8")
    heap = sections["HEAP"]
    offsets = unpack_array(sections["HOFF"], "<u8")
    doc.texts = [
        heap[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]
    vocab_blob = sections["VOCB"]
    vocab_offsets = unpack_array(sections["VOFF"], "<u8")
    for i in range(len(vocab_offsets) - 1):
        doc.vocabulary.intern(
            vocab_blob[vocab_offsets[i] : vocab_offsets[i + 1]].decode("utf-8")
        )
    if "SRCB" in sections:
        doc.source_bytes = unpack_array(sections["SRCB"], "<u8")[0]
    doc.rebuild_nid_map()
    return doc


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def save_store(store: Store, path: str) -> None:
    """Write all documents plus the manifest to directory ``path``."""
    os.makedirs(path, exist_ok=True)
    documents = {}
    for name, doc in store.documents.items():
        stem = _doc_filename(name)
        _write_document(doc, os.path.join(path, f"{stem}.doc"))
        documents[name] = stem
    manifest = {
        "format": "repro-xmldb",
        "documents": documents,
        "next_nid": store._next_nid,
    }
    with open(os.path.join(path, _MANIFEST), "w") as fh:
        json.dump(manifest, fh, indent=2)


def _read_manifest(path: str) -> dict:
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise ReproError(f"no {_MANIFEST} in {path!r}")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    if manifest.get("format") != "repro-xmldb":
        raise FormatError(f"{manifest_path!r} is not a repro database")
    return manifest


def load_store(path: str) -> Store:
    """Open a directory written by :func:`save_store`."""
    manifest = _read_manifest(path)
    store = Store()
    for name, stem in manifest["documents"].items():
        doc = _read_document(name, os.path.join(path, f"{stem}.doc"))
        store._register(doc)
    store._next_nid = manifest["next_nid"]
    return store


# ---------------------------------------------------------------------------
# Indices
# ---------------------------------------------------------------------------


def _write_string_index(index: StringIndex, doc: Document, path: str) -> None:
    nids = []
    hashes = []
    for nid in doc.nid:
        field = index.hash_of.get(nid)
        if field is not None:
            nids.append(nid)
            hashes.append(field)
    with open(path, "wb") as fh:
        write_header(fh)
        write_section(fh, "NIDS", pack_array(nids, "<u8"))
        write_section(fh, "HASH", pack_array(hashes, "<u4"))


def _read_string_index_into(index: StringIndex, path: str) -> None:
    with open(path, "rb") as fh:
        read_header(fh)
        sections = dict(read_sections(fh))
    nids = unpack_array(sections["NIDS"], "<u8")
    hashes = unpack_array(sections["HASH"], "<u4")
    for nid, field in zip(nids, hashes):
        index.hash_of[nid] = field


def _pack_fragment(index: TypedIndex, fragment: Fragment) -> bytes:
    out = bytearray(encode_varint(fragment.state))
    out += encode_varint(len(fragment.tokens))
    for cid, payload, length in fragment.tokens:
        out.append(cid)
        if cid in index.plugin.run_class_ids:
            out += encode_varint(payload)
            out += encode_varint(length)
        elif cid in index.plugin.char_class_ids:
            out += payload.encode("utf-8")
    return bytes(out)


def _unpack_fragment(index: TypedIndex, payload: bytes, offset: int) -> tuple[Fragment, int]:
    state, offset = decode_varint(payload, offset)
    count, offset = decode_varint(payload, offset)
    tokens = []
    for _ in range(count):
        cid = payload[offset]
        offset += 1
        if cid in index.plugin.run_class_ids:
            value, offset = decode_varint(payload, offset)
            length, offset = decode_varint(payload, offset)
            tokens.append((cid, value, length))
        elif cid in index.plugin.char_class_ids:
            tokens.append((cid, chr(payload[offset]), 1))
            offset += 1
        else:
            tokens.append((cid, None, 1))
    return Fragment(state, tuple(tokens)), offset


def _write_typed_index(index: TypedIndex, doc: Document, path: str) -> None:
    nids = []
    blob = bytearray()
    for nid in doc.nid:
        fragment = index.fragment_of_node.get(nid)
        if fragment is not None:
            nids.append(nid)
            blob += _pack_fragment(index, fragment)
    with open(path, "wb") as fh:
        write_header(fh)
        write_section(fh, "NIDS", pack_array(nids, "<u8"))
        write_section(fh, "FRAG", bytes(blob))


def _read_typed_index_into(index: TypedIndex, path: str) -> None:
    with open(path, "rb") as fh:
        read_header(fh)
        sections = dict(read_sections(fh))
    nids = unpack_array(sections["NIDS"], "<u8")
    blob = sections["FRAG"]
    offset = 0
    for nid in nids:
        fragment, offset = _unpack_fragment(index, blob, offset)
        index.fragment_of_node[nid] = fragment
        value = index.plugin.cast(fragment)
        if value is not None:
            index._value_of[nid] = value


# ---------------------------------------------------------------------------
# Manager
# ---------------------------------------------------------------------------


def save_manager(manager: IndexManager, path: str) -> None:
    """Persist the store and all index fields to directory ``path``."""
    save_store(manager.store, path)
    manifest = _read_manifest(path)
    manifest["indexes"] = {
        "string": manager.string_index is not None,
        "typed": sorted(manager.typed_indexes),
        "substring": (
            manager.substring_index.q
            if manager.substring_index is not None
            else None
        ),
    }
    for name, doc in manager.store.documents.items():
        stem = manifest["documents"][name]
        if manager.string_index is not None:
            _write_string_index(
                manager.string_index, doc, os.path.join(path, f"{stem}.sidx")
            )
        for type_name, index in manager.typed_indexes.items():
            _write_typed_index(
                index, doc, os.path.join(path, f"{stem}.{type_name}.tidx")
            )
    with open(os.path.join(path, _MANIFEST), "w") as fh:
        json.dump(manifest, fh, indent=2)


def load_manager(path: str) -> IndexManager:
    """Open a directory written by :func:`save_manager`.

    Per-node fields are read back from the index files (no re-hashing,
    no FSM runs); the B-trees are rebuilt by sorted bulk load, and the
    substring index (if configured) is re-derived from the leaves.
    """
    manifest = _read_manifest(path)
    config = manifest.get("indexes")
    if config is None:
        raise ReproError(
            f"{path!r} was saved with save_store; use load_store instead"
        )
    store = load_store(path)
    manager = IndexManager(
        store=store,
        string=config["string"],
        typed=tuple(config["typed"]),
        substring=config["substring"] is not None,
        substring_q=config["substring"] or 3,
    )
    for name, doc in store.documents.items():
        stem = manifest["documents"][name]
        if manager.string_index is not None:
            _read_string_index_into(
                manager.string_index, os.path.join(path, f"{stem}.sidx")
            )
        for type_name, index in manager.typed_indexes.items():
            _read_typed_index_into(
                index, os.path.join(path, f"{stem}.{type_name}.tidx")
            )
        manager._substring_add_range(doc, 0, len(doc) - 1)
    # Rebuild the B-trees from the recovered fields.
    if manager.string_index is not None:
        index = manager.string_index
        entries = sorted((field, nid) for nid, field in index.hash_of.items())
        index.tree.bulk_load((key, None) for key in entries)
    for index in manager.typed_indexes.values():
        entries = sorted((value, nid) for nid, value in index._value_of.items())
        index.tree.bulk_load((key, None) for key in entries)
    return manager
