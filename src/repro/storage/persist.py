"""Persistence: save/load stores and index managers to disk.

Layout of a database directory::

    MANIFEST.json        store metadata: documents, nid counter, index
                         config, checkpoint epoch
    <stem>.doc           one file per document (columns + heaps)
    <stem>.sidx          string-index hash column for the document
    <stem>.<type>.tidx   typed-index fragments for the document

The string and typed indices persist their per-node fields (the
expensive part: hashing/FSM over all text); their B-trees are
rebuilt by bulk load at open, and the optional substring index is
re-derived from the leaves.  Documents round-trip exactly.

Snapshots commit atomically (see ``docs/durability.md``): every data
file is written to a temp name, fsynced and renamed under an
epoch-suffixed stem (``<name>@<epoch>``), and the manifest — which
names exactly the files belonging to the snapshot and carries the
monotonically increasing checkpoint epoch — is replaced *last*.  A
crash at any intermediate point leaves the previous manifest pointing
at the previous epoch's untouched files; stale epochs are garbage
collected after the next successful commit.  Version-1 directories
(no epoch in the manifest, unsuffixed stems) still load.
"""

from __future__ import annotations

import io
import json
import os

from ..core.fsm.fragment import Fragment
from ..core.manager import IndexManager
from ..core.string_index import StringIndex
from ..core.typed_index import TypedIndex
from ..errors import ReproError
from ..xmldb.document import Document
from ..xmldb.store import Store
from . import faults
from .format import (
    FormatError,
    encode_varint,
    decode_varint,
    pack_array,
    read_header,
    read_sections,
    unpack_array,
    write_header,
    write_section,
)

__all__ = [
    "save_store",
    "load_store",
    "save_manager",
    "load_manager",
    "read_manifest",
    "manifest_epoch",
    "document_bytes",
    "document_from_bytes",
]

_MANIFEST = "MANIFEST.json"

#: Manifest schema version written by this code (1 had no epoch and
#: overwrote files in place; readers accept both).
_MANIFEST_VERSION = 2


def _doc_filename(name: str) -> str:
    """A filesystem-safe file stem for a document name."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


def _assign_stems(names, epoch: int) -> dict[str, str]:
    """Unique epoch-suffixed stems for the documents of one snapshot.

    Sanitising can collide (``a/b`` and ``a_b`` both map to ``a_b``);
    colliding stems get a ``~N`` suffix, recorded in the manifest so
    loaders never re-derive stems from names.  ``~`` and ``@`` cannot
    appear in a sanitised stem, so the suffixes are unambiguous.
    """
    stems: dict[str, str] = {}
    used: set[str] = set()
    for name in names:
        base = _doc_filename(name)
        candidate = base
        serial = 2
        while candidate in used:
            candidate = f"{base}~{serial}"
            serial += 1
        used.add(candidate)
        stems[name] = f"{candidate}@{epoch}"
    return stems


# ---------------------------------------------------------------------------
# Atomic commit machinery
# ---------------------------------------------------------------------------


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(final_path: str, data: bytes, point: str) -> None:
    """Write ``data`` to a temp file, fsync, rename over ``final_path``."""
    tmp = final_path + ".tmp"
    with open(tmp, "wb") as fh:
        faults.fault_write(fh, data, f"{point}.write")
        fh.flush()
        os.fsync(fh.fileno())
    faults.crashpoint(f"{point}.before_rename")
    os.replace(tmp, final_path)
    faults.crashpoint(f"{point}.renamed")


def _commit_files(path: str, files: dict[str, bytes]) -> None:
    for filename, data in files.items():
        _atomic_write(os.path.join(path, filename), data, "persist.file")
    _fsync_dir(path)
    faults.crashpoint("persist.files_committed")


def _commit_manifest(path: str, manifest: dict) -> None:
    data = json.dumps(manifest, indent=2).encode("utf-8")
    faults.crashpoint("persist.before_manifest")
    _atomic_write(os.path.join(path, _MANIFEST), data, "persist.manifest")
    _fsync_dir(path)
    faults.crashpoint("persist.manifest_committed")


def _stem_of_data_file(entry: str) -> str | None:
    """The document stem a data file belongs to, else ``None``."""
    if entry.endswith(".doc"):
        return entry[:-4]
    if entry.endswith(".sidx"):
        return entry[:-5]
    if entry.endswith(".tidx"):
        stem, sep, _type = entry[:-5].rpartition(".")
        return stem if sep else None
    return None


def _gc_stale_files(path: str, manifest: dict) -> None:
    """Delete data files no committed manifest references.

    Runs only after a successful manifest commit, so everything it
    removes belongs to superseded epochs or crashed partial commits
    (leftover ``.tmp`` files).
    """
    referenced = set(manifest.get("documents", {}).values())
    for entry in os.listdir(path):
        if entry.endswith(".tmp"):
            stale = True
        else:
            stem = _stem_of_data_file(entry)
            stale = stem is not None and stem not in referenced
        if stale:
            try:
                os.remove(os.path.join(path, entry))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    faults.crashpoint("persist.gc_done")


def read_manifest(path: str) -> dict | None:
    """The committed manifest of ``path``, or ``None`` if absent."""
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.exists(manifest_path):
        return None
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    if manifest.get("format") != "repro-xmldb":
        raise FormatError(f"{manifest_path!r} is not a repro database")
    return manifest


def manifest_epoch(manifest: dict | None) -> int:
    """Checkpoint epoch of a manifest (0 for version-1 manifests)."""
    if manifest is None:
        return 0
    return int(manifest.get("epoch", 0))


def _next_epoch(path: str) -> int:
    try:
        return manifest_epoch(read_manifest(path)) + 1
    except (FormatError, ValueError, json.JSONDecodeError):
        return 1


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------


def _document_bytes(doc: Document) -> bytes:
    fh = io.BytesIO()
    write_header(fh)
    write_section(fh, "KIND", pack_array(doc.kind, "u1"))
    write_section(fh, "SIZE", pack_array(doc.size, "<u4"))
    write_section(fh, "LEVL", pack_array(doc.level, "<u2"))
    write_section(fh, "NAME", pack_array(doc.name_id, "<i4"))
    write_section(fh, "TEXT", pack_array(doc.text_id, "<i4"))
    write_section(fh, "NIDS", pack_array(doc.nid, "<u8"))
    write_section(fh, "PRNT", pack_array(doc.parent_nid, "<i8"))
    heap = io.BytesIO()
    offsets = []
    for text in doc.texts:
        offsets.append(heap.tell())
        heap.write(text.encode("utf-8"))
    offsets.append(heap.tell())
    write_section(fh, "HEAP", heap.getvalue())
    write_section(fh, "HOFF", pack_array(offsets, "<u8"))
    names = [doc.vocabulary.name_of(i) for i in range(len(doc.vocabulary))]
    vocab_blob = io.BytesIO()
    vocab_offsets = []
    for name in names:
        vocab_offsets.append(vocab_blob.tell())
        vocab_blob.write(name.encode("utf-8"))
    vocab_offsets.append(vocab_blob.tell())
    write_section(fh, "VOCB", vocab_blob.getvalue())
    write_section(fh, "VOFF", pack_array(vocab_offsets, "<u8"))
    write_section(fh, "SRCB", pack_array([doc.source_bytes], "<u8"))
    return fh.getvalue()


def document_bytes(doc: Document) -> bytes:
    """Public alias for the on-disk document encoding — also the unit
    of transfer for shard migration (``docs/sharding.md``)."""
    return _document_bytes(doc)


def document_from_bytes(name: str, payload: bytes) -> Document:
    """Decode one document from its :func:`document_bytes` encoding.

    The returned document carries the *source* engine's nids verbatim;
    an importer that lives in a different nid space must remap them
    (see ``IndexManager.adopt_document``) before registering it.
    """
    doc = Document(name)
    sections: dict[str, bytes] = {}
    buf = io.BytesIO(payload)
    read_header(buf)
    for tag, section in read_sections(buf):
        sections[tag] = section
    required = {"KIND", "SIZE", "LEVL", "NAME", "TEXT", "NIDS", "PRNT",
                "HEAP", "HOFF", "VOCB", "VOFF"}
    missing = required - set(sections)
    if missing:
        raise FormatError(
            f"document payload for {name!r} missing {sorted(missing)}"
        )
    doc.kind = unpack_array(sections["KIND"], "u1")
    doc.size = unpack_array(sections["SIZE"], "<u4")
    doc.level = unpack_array(sections["LEVL"], "<u2")
    doc.name_id = unpack_array(sections["NAME"], "<i4")
    doc.text_id = unpack_array(sections["TEXT"], "<i4")
    doc.nid = unpack_array(sections["NIDS"], "<u8")
    doc.parent_nid = unpack_array(sections["PRNT"], "<i8")
    heap = sections["HEAP"]
    offsets = unpack_array(sections["HOFF"], "<u8")
    doc.texts = [
        heap[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]
    vocab_blob = sections["VOCB"]
    vocab_offsets = unpack_array(sections["VOFF"], "<u8")
    for i in range(len(vocab_offsets) - 1):
        doc.vocabulary.intern(
            vocab_blob[vocab_offsets[i] : vocab_offsets[i + 1]].decode("utf-8")
        )
    if "SRCB" in sections:
        doc.source_bytes = unpack_array(sections["SRCB"], "<u8")[0]
    doc.rebuild_nid_map()
    return doc


def _read_document(name: str, path: str) -> Document:
    with open(path, "rb") as fh:
        payload = faults.filter_read(fh.read(), "persist.read_doc")
    return document_from_bytes(name, payload)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def _store_manifest(store: Store, stems: dict[str, str], epoch: int) -> dict:
    return {
        "format": "repro-xmldb",
        "version": _MANIFEST_VERSION,
        "epoch": epoch,
        "documents": stems,
        "next_nid": store._next_nid,
    }


def save_store(store: Store, path: str, epoch: int | None = None) -> int:
    """Atomically snapshot all documents plus the manifest to directory
    ``path``; returns the committed checkpoint epoch."""
    os.makedirs(path, exist_ok=True)
    if epoch is None:
        epoch = _next_epoch(path)
    stems = _assign_stems(store.documents, epoch)
    files = {
        f"{stems[name]}.doc": _document_bytes(doc)
        for name, doc in store.documents.items()
    }
    manifest = _store_manifest(store, stems, epoch)
    _commit_files(path, files)
    _commit_manifest(path, manifest)
    _gc_stale_files(path, manifest)
    return epoch


def _read_manifest(path: str) -> dict:
    manifest = read_manifest(path)
    if manifest is None:
        raise ReproError(f"no {_MANIFEST} in {path!r}")
    return manifest


def load_store(path: str) -> Store:
    """Open a directory written by :func:`save_store`."""
    manifest = _read_manifest(path)
    store = Store()
    for name, stem in manifest["documents"].items():
        doc = _read_document(name, os.path.join(path, f"{stem}.doc"))
        store._register(doc)
    store._next_nid = manifest["next_nid"]
    return store


# ---------------------------------------------------------------------------
# Indices
# ---------------------------------------------------------------------------


def _string_index_bytes(index: StringIndex, doc: Document) -> bytes:
    nids = []
    hashes = []
    for nid in doc.nid:
        field = index.hash_of.get(nid)
        if field is not None:
            nids.append(nid)
            hashes.append(field)
    fh = io.BytesIO()
    write_header(fh)
    write_section(fh, "NIDS", pack_array(nids, "<u8"))
    write_section(fh, "HASH", pack_array(hashes, "<u4"))
    return fh.getvalue()


def _read_string_index_into(index: StringIndex, path: str) -> None:
    with open(path, "rb") as fh:
        read_header(fh)
        sections = dict(read_sections(fh))
    nids = unpack_array(sections["NIDS"], "<u8")
    hashes = unpack_array(sections["HASH"], "<u4")
    for nid, field in zip(nids, hashes):
        index.hash_of[nid] = field


def _pack_fragment(index: TypedIndex, fragment: Fragment) -> bytes:
    out = bytearray(encode_varint(fragment.state))
    out += encode_varint(len(fragment.tokens))
    for cid, payload, length in fragment.tokens:
        out.append(cid)
        if cid in index.plugin.run_class_ids:
            out += encode_varint(payload)
            out += encode_varint(length)
        elif cid in index.plugin.char_class_ids:
            out += payload.encode("utf-8")
    return bytes(out)


def _unpack_fragment(index: TypedIndex, payload: bytes, offset: int) -> tuple[Fragment, int]:
    state, offset = decode_varint(payload, offset)
    count, offset = decode_varint(payload, offset)
    tokens = []
    for _ in range(count):
        cid = payload[offset]
        offset += 1
        if cid in index.plugin.run_class_ids:
            value, offset = decode_varint(payload, offset)
            length, offset = decode_varint(payload, offset)
            tokens.append((cid, value, length))
        elif cid in index.plugin.char_class_ids:
            # The packer wrote the character's full UTF-8 encoding;
            # consume exactly that many bytes (a single-byte read would
            # misalign the rest of the stream for non-ASCII payloads).
            first = payload[offset]
            if first < 0x80:
                width = 1
            elif first >= 0xF0:
                width = 4
            elif first >= 0xE0:
                width = 3
            else:
                width = 2
            char = payload[offset : offset + width].decode("utf-8")
            tokens.append((cid, char, 1))
            offset += width
        else:
            tokens.append((cid, None, 1))
    return Fragment(state, tuple(tokens)), offset


def _typed_index_bytes(index: TypedIndex, doc: Document) -> bytes:
    nids = []
    blob = bytearray()
    for nid in doc.nid:
        fragment = index.fragment_of_node.get(nid)
        if fragment is not None:
            nids.append(nid)
            blob += _pack_fragment(index, fragment)
    fh = io.BytesIO()
    write_header(fh)
    write_section(fh, "NIDS", pack_array(nids, "<u8"))
    write_section(fh, "FRAG", bytes(blob))
    return fh.getvalue()


def _read_typed_index_into(index: TypedIndex, path: str) -> None:
    with open(path, "rb") as fh:
        read_header(fh)
        sections = dict(read_sections(fh))
    nids = unpack_array(sections["NIDS"], "<u8")
    blob = sections["FRAG"]
    offset = 0
    for nid in nids:
        fragment, offset = _unpack_fragment(index, blob, offset)
        index.fragment_of_node[nid] = fragment
        value = index.plugin.cast(fragment)
        if value is not None:
            index._value_of[nid] = value


# ---------------------------------------------------------------------------
# Manager
# ---------------------------------------------------------------------------


def save_manager(manager: IndexManager, path: str,
                 epoch: int | None = None) -> int:
    """Atomically snapshot the store and all index fields to directory
    ``path``; returns the committed checkpoint epoch.

    All data files (documents and index columns) are committed before
    the manifest; the manifest rename is the commit point.
    """
    os.makedirs(path, exist_ok=True)
    if epoch is None:
        epoch = _next_epoch(path)
    stems = _assign_stems(manager.store.documents, epoch)
    files: dict[str, bytes] = {}
    for name, doc in manager.store.documents.items():
        stem = stems[name]
        files[f"{stem}.doc"] = _document_bytes(doc)
        if manager.string_index is not None:
            files[f"{stem}.sidx"] = _string_index_bytes(
                manager.string_index, doc
            )
        for type_name, index in manager.typed_indexes.items():
            files[f"{stem}.{type_name}.tidx"] = _typed_index_bytes(index, doc)
    manifest = _store_manifest(manager.store, stems, epoch)
    manifest["indexes"] = {
        "string": manager.string_index is not None,
        "typed": sorted(manager.typed_indexes),
        "substring": (
            manager.substring_index.q
            if manager.substring_index is not None
            else None
        ),
    }
    _commit_files(path, files)
    _commit_manifest(path, manifest)
    _gc_stale_files(path, manifest)
    return epoch


def load_manager(path: str) -> IndexManager:
    """Open a directory written by :func:`save_manager`.

    Per-node fields are read back from the index files (no re-hashing,
    no FSM runs); the B-trees are rebuilt by sorted bulk load, and the
    substring index (if configured) is re-derived from the leaves.
    """
    manifest = _read_manifest(path)
    config = manifest.get("indexes")
    if config is None:
        raise ReproError(
            f"{path!r} was saved with save_store; use load_store instead"
        )
    store = load_store(path)
    manager = IndexManager(
        store=store,
        string=config["string"],
        typed=tuple(config["typed"]),
        substring=config["substring"] is not None,
        substring_q=config["substring"] or 3,
    )
    for name, doc in store.documents.items():
        stem = manifest["documents"][name]
        if manager.string_index is not None:
            _read_string_index_into(
                manager.string_index, os.path.join(path, f"{stem}.sidx")
            )
        for type_name, index in manager.typed_indexes.items():
            _read_typed_index_into(
                index, os.path.join(path, f"{stem}.{type_name}.tidx")
            )
        manager._substring_add_range(doc, 0, len(doc) - 1)
    # Rebuild the B-trees from the recovered fields.
    if manager.string_index is not None:
        index = manager.string_index
        entries = sorted((field, nid) for nid, field in index.hash_of.items())
        index.tree.bulk_load((key, None) for key in entries)
    for index in manager.typed_indexes.values():
        entries = sorted((value, nid) for nid, value in index._value_of.items())
        index.tree.bulk_load((key, None) for key in entries)
    return manager
