"""Group commit: one fsync amortized across concurrent writers.

With ``sync="fsync"`` every committed update costs a durable-media
round trip; at N concurrent writers that is N fsyncs for N commits.
Group commit batches them: writers *enqueue* framed records and block;
one of them — the **leader** — drains the queue, hands the whole batch
to :meth:`~repro.storage.wal.WriteAheadLog.append_many` (one write,
one fsync), publishes the new durable sequence number and wakes the
rest.  Leadership is transient: whoever finds no active leader takes
over, so there is no dedicated committer thread to manage.

Acknowledgment contract (see ``docs/concurrency.md``): a writer's
update is **acknowledged** when :meth:`wait_durable` returns, i.e. its
record — and, because the queue preserves enqueue order, every record
enqueued before it — is on stable storage.  A crash may lose the
unacknowledged suffix only; frames remain individually CRC-guarded, so
a torn batch recovers to its longest valid prefix, which is always a
prefix of the enqueue order.

Crash injection: if the leader's write raises (e.g. an
:class:`~repro.storage.faults.InjectedCrash`), the log is *poisoned* —
every current and future caller re-raises the same exception, modeling
the process dying for all writers at once.
"""

from __future__ import annotations

import threading
import time

from .wal import WalRecord, WriteAheadLog

__all__ = ["GroupCommitLog"]


class GroupCommitLog:
    """Leader/follower group-commit front end over a WAL.

    Args:
        wal: The log records are written to.
        batch_max: Most records the leader writes per batch.
        batch_wait: Seconds the leader lingers before draining a
            non-full queue, letting more writers pile on (0 = commit
            immediately; small values trade latency for batch
            occupancy).
        metrics: Optional registry; counts batches/records (mean
            occupancy = records/batches) and records per-batch sizes
            in the ``wal.group.batch_size`` histogram.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        batch_max: int = 32,
        batch_wait: float = 0.0,
        metrics=None,
    ):
        if batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        self._wal = wal
        self._batch_max = batch_max
        self._batch_wait = batch_wait
        self._metrics = metrics
        self._cond = threading.Condition()
        self._queue: list[tuple[int, WalRecord]] = []
        self._next_seq = 0
        self._durable_seq = -1
        self._leader_active = False
        self._poison: BaseException | None = None

    @property
    def poisoned(self) -> bool:
        return self._poison is not None

    def _check_poison(self) -> None:
        if self._poison is not None:
            raise self._poison

    # ------------------------------------------------------------------
    # Writer API
    # ------------------------------------------------------------------

    def enqueue(self, record: WalRecord) -> int:
        """Queue a record for the next batch; returns its sequence
        number.  Non-blocking — callers typically enqueue while still
        holding the writer lock (preserving WAL order = apply order)
        and :meth:`wait_durable` after releasing it."""
        with self._cond:
            self._check_poison()
            seq = self._next_seq
            self._next_seq += 1
            self._queue.append((seq, record))
            return seq

    def wait_durable(self, seq: int) -> None:
        """Block until record ``seq`` is on stable storage.

        The caller may be elected leader while waiting, in which case
        it commits batches itself until its record is durable, then
        hands leadership to the next waiter.
        """
        while True:
            with self._cond:
                while True:
                    self._check_poison()
                    if self._durable_seq >= seq:
                        return
                    if not self._leader_active:
                        self._leader_active = True
                        break
                    self._cond.wait()
            try:
                self._lead(seq)
            finally:
                with self._cond:
                    self._leader_active = False
                    self._cond.notify_all()

    def append(self, record: WalRecord) -> int:
        """Enqueue + wait: the simple one-call form."""
        seq = self.enqueue(record)
        self.wait_durable(seq)
        return seq

    def drain(self) -> None:
        """Commit everything enqueued so far (checkpoint support)."""
        with self._cond:
            target = self._next_seq - 1
        if target >= 0:
            self.wait_durable(target)

    # ------------------------------------------------------------------
    # Leader protocol
    # ------------------------------------------------------------------

    def _lead(self, seq: int) -> None:
        """Write batches until ``seq`` is durable (leader role)."""
        while True:
            if self._batch_wait > 0:
                with self._cond:
                    pending = len(self._queue)
                if 0 < pending < self._batch_max:
                    time.sleep(self._batch_wait)
            with self._cond:
                batch = self._queue[: self._batch_max]
                del self._queue[: len(batch)]
            if not batch:
                return  # a previous leader already covered seq
            try:
                self._wal.append_many([record for _seq, record in batch])
            except BaseException as exc:
                # The process "died" mid-commit: no record of this or
                # any later batch may be acknowledged.
                with self._cond:
                    self._poison = exc
                    self._cond.notify_all()
                raise
            with self._cond:
                self._durable_seq = batch[-1][0]
                # Metrics update inside the notify-time critical
                # section: the counters/histogram advance atomically
                # with the durable sequence, so an observer can never
                # see a batch acknowledged but uncounted (or counted
                # after a later poison made the numbers misleading).
                if self._metrics is not None:
                    self._metrics.counter("wal.group.batches").inc()
                    self._metrics.counter("wal.group.records").inc(len(batch))
                    self._metrics.histogram("wal.group.batch_size").observe(
                        len(batch)
                    )
                    if len(batch) == self._batch_max:
                        self._metrics.counter("wal.group.full_batches").inc()
                self._cond.notify_all()
            if self._durable_seq >= seq:
                return
