"""Fault injection for the durability layer.

The persistence and WAL code paths are threaded with named
*crashpoints* (:func:`crashpoint`) and route their file writes and
reads through :func:`fault_write` / :func:`filter_read`.  In
production no injector is installed and every hook is a cheap
``is None`` check.  Tests install a :class:`FaultInjector` (via
:func:`injected`) to

* record every crashpoint hit, so a recovery suite can enumerate the
  points a workload actually crosses;
* simulate a power cut at the Nth hit of a chosen point by raising
  :class:`InjectedCrash`;
* simulate a *torn write* — only a prefix of the data reaches the file
  before the crash — at write-shaped points;
* simulate a *short read* — the tail of a file is missing — at
  read-shaped points.

:class:`InjectedCrash` deliberately derives from ``BaseException`` so
that ordinary ``except Exception`` error handling inside the storage
layer cannot absorb a simulated power cut.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import BinaryIO, Iterator

__all__ = [
    "InjectedCrash",
    "CrashPlan",
    "FaultInjector",
    "active",
    "injected",
    "crashpoint",
    "fault_write",
    "filter_read",
]


class InjectedCrash(BaseException):
    """A simulated power cut raised at an armed crashpoint."""

    def __init__(self, point: str, occurrence: int):
        super().__init__(f"injected crash at {point!r} (hit #{occurrence})")
        self.point = point
        self.occurrence = occurrence


class CrashPlan:
    """Crash at the ``occurrence``-th hit of ``point``.

    ``keep_bytes`` applies only when the point is a write: that many
    bytes of the attempted write reach the file before the crash
    (a torn write).  ``None`` means the write never starts.
    """

    def __init__(self, point: str, occurrence: int = 1,
                 keep_bytes: int | None = None):
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        self.point = point
        self.occurrence = occurrence
        self.keep_bytes = keep_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CrashPlan({self.point!r}, occurrence={self.occurrence}, "
                f"keep_bytes={self.keep_bytes})")


class FaultInjector:
    """Counts crashpoint hits and fires the configured faults.

    Args:
        crash: Optional :class:`CrashPlan` to arm.
        short_reads: ``{point: keep_bytes}`` — reads at ``point`` are
            truncated to the first ``keep_bytes`` bytes.
    """

    def __init__(self, crash: CrashPlan | None = None,
                 short_reads: dict[str, int] | None = None):
        self.crash = crash
        self.short_reads = dict(short_reads or {})
        self.hits: dict[str, int] = {}
        self.trace: list[str] = []

    def _register(self, point: str) -> int:
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        self.trace.append(point)
        return count

    def _should_crash(self, point: str, count: int) -> bool:
        plan = self.crash
        return (plan is not None and plan.point == point
                and count == plan.occurrence)

    def on_crashpoint(self, point: str) -> None:
        count = self._register(point)
        if self._should_crash(point, count):
            raise InjectedCrash(point, count)

    def on_write(self, fh: BinaryIO, data: bytes, point: str) -> None:
        count = self._register(point)
        if self._should_crash(point, count):
            keep = self.crash.keep_bytes
            if keep:
                fh.write(data[:keep])
                fh.flush()
            raise InjectedCrash(point, count)
        fh.write(data)

    def on_read(self, data: bytes, point: str) -> bytes:
        keep = self.short_reads.get(point)
        if keep is not None:
            return data[:keep]
        return data


_INJECTOR: FaultInjector | None = None


def active() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _INJECTOR


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of the block."""
    global _INJECTOR
    previous = _INJECTOR
    _INJECTOR = injector
    try:
        yield injector
    finally:
        _INJECTOR = previous


def crashpoint(point: str) -> None:
    """Mark a crash-consistency boundary in the storage code."""
    if _INJECTOR is not None:
        _INJECTOR.on_crashpoint(point)


def fault_write(fh: BinaryIO, data: bytes, point: str) -> None:
    """``fh.write(data)``, possibly torn by the installed injector."""
    if _INJECTOR is None:
        fh.write(data)
    else:
        _INJECTOR.on_write(fh, data, point)


def filter_read(data: bytes, point: str) -> bytes:
    """Pass read bytes through the injector's short-read simulation."""
    if _INJECTOR is None:
        return data
    return _INJECTOR.on_read(data, point)
