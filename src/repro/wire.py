"""Length-prefixed JSON wire protocol shared by server and client.

A connection carries a stream of **frames**::

    u32 big-endian body length | body (UTF-8 JSON object)

Requests are objects with an ``id`` (client-chosen, echoed back) and
an ``op``; remaining keys are operation parameters.  Responses echo
the ``id`` and carry ``ok``: on success the payload is under
``result``, on failure ``error`` holds a stable error code plus a
human ``message`` (and op-specific hints such as ``retry_after_ms``
for :data:`E_BUSY`).  Because every response is tagged with its
request id, clients may **pipeline**: send many requests without
waiting, and match responses as they arrive (the server may answer
out of order).

The frame length is capped (:data:`MAX_FRAME_BYTES`) so a corrupt or
hostile peer cannot make the other side buffer unboundedly; an
oversized header is a protocol error and the connection is dropped.

See ``docs/serving.md`` for the full protocol specification.
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = [
    "PROTOCOL_VERSION",
    "FEATURES",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode_frame",
    "decode_header",
    "read_frame",
    "write_frame",
    "ok_response",
    "error_response",
    "hello_request",
    "check_hello",
    "E_BAD_REQUEST",
    "E_UNKNOWN_OP",
    "E_BUSY",
    "E_SHUTTING_DOWN",
    "E_NO_VIEW",
    "E_VIEW_INVALID",
    "E_ENGINE",
    "E_INTERNAL",
    "E_UNSUPPORTED_VERSION",
    "E_SHARD_DOWN",
    "E_NO_EPOCH",
    "E_DOC_MOVED",
]

#: Bumped on incompatible protocol changes; exchanged in ``hello``.
PROTOCOL_VERSION = 1

#: Optional capabilities this protocol version serves.  A client may
#: name the features it needs in its ``hello``; a server that lacks
#: any of them answers ``unsupported_version`` instead of failing in
#: undefined ways mid-session.
FEATURES = ("views", "rows", "scatter", "replication", "as_of", "elastic")

#: Upper bound on one frame's body size (16 MiB).
MAX_FRAME_BYTES = 16 << 20

_HEADER = struct.Struct(">I")

# Stable error codes (the ``error`` field of failure responses).
E_BAD_REQUEST = "bad_request"      # malformed frame/params
E_UNKNOWN_OP = "unknown_op"        # op not in the dispatch table
E_BUSY = "busy"                    # update queue full; retry later
E_SHUTTING_DOWN = "shutting_down"  # server draining; no new work
E_NO_VIEW = "no_view"              # unknown view token
E_VIEW_INVALID = "view_invalid"    # pinned view structurally invalidated
E_ENGINE = "engine"                # engine-level ReproError
E_INTERNAL = "internal"            # unexpected server-side failure
E_UNSUPPORTED_VERSION = "unsupported_version"  # hello version/feature mismatch
E_SHARD_DOWN = "shard_down"        # coordinator: owning shard unreachable
E_NO_EPOCH = "epoch_not_retained"  # as_of epoch outside the retained window
E_DOC_MOVED = "doc_moved"          # placement changed under the request; retry


class WireError(Exception):
    """A framing-level protocol violation (connection must close)."""


def encode_frame(message: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + JSON body."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame body of {len(body)} bytes exceeds "
                        f"{MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_header(header: bytes) -> int:
    """Body length from a 4-byte frame header (validates the cap)."""
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return length


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on a clean mid-message EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """Blocking frame read from a socket; None on EOF at a frame
    boundary, :class:`WireError` on a torn or malformed frame."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length = decode_header(header)
    body = _recv_exact(sock, length)
    if body is None:
        raise WireError("connection closed mid-frame")
    try:
        message = json.loads(body)
    except ValueError as exc:
        raise WireError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise WireError("frame body must be a JSON object")
    return message


def write_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def ok_response(request_id, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str, **extra) -> dict:
    response = {"id": request_id, "ok": False, "error": code,
                "message": message}
    response.update(extra)
    return response


def hello_request(features: tuple[str, ...] | list[str] = ()) -> dict:
    """Parameters of a version-checked ``hello`` request."""
    params: dict = {"protocol": PROTOCOL_VERSION}
    if features:
        params["features"] = list(features)
    return params


def check_hello(message: dict) -> str | None:
    """Validate a ``hello`` request against this side's protocol.

    Returns ``None`` when the peer is compatible, else a human-readable
    reason for an :data:`E_UNSUPPORTED_VERSION` rejection.  A ``hello``
    carrying **no** ``protocol`` field is accepted — pre-handshake
    clients never announced one, and the response still advertises the
    server's version so they can check it themselves.
    """
    version = message.get("protocol")
    if version is not None and version != PROTOCOL_VERSION:
        return (f"peer speaks protocol {version!r}, this side speaks "
                f"{PROTOCOL_VERSION}")
    requested = message.get("features") or []
    missing = sorted(set(requested) - set(FEATURES))
    if missing:
        return f"unsupported features requested: {', '.join(missing)}"
    return None
