"""Diagnostics for the hash function H (extends the paper's Section 6).

The paper evaluates H empirically through its collision histogram
(Figure 11) and explains the URL pathology.  This module adds the
standard hash-quality diagnostics so the behaviour can be studied
analytically on any corpus:

* :func:`avalanche_matrix` — probability that output bit j flips when
  input bit i flips.  H is a *linear* function over GF(2) (pure XOR of
  shifted inputs), so each input bit deterministically flips a fixed
  set of output bits: entries are exactly 0.0 or 1.0, far from the
  0.5 ideal of cryptographic mixing — the structural reason the
  27-periodicity cancellation exists.
* :func:`bit_balance` — frequency of each output bit over a corpus.
* :func:`collision_classes` — group a corpus by hash value.
* :func:`periodicity_defect` — construct, for any string, a distinct
  partner with the same hash (constructive proof of the paper's Wiki
  observation).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from .hashing import C_ARRAY_BITS, hash_string

__all__ = [
    "avalanche_matrix",
    "bit_balance",
    "collision_classes",
    "periodicity_defect",
]


def avalanche_matrix(length: int, base_char: str = "a") -> list[list[float]]:
    """Flip-probability matrix for inputs of ``length`` bytes.

    Returns ``matrix[input_bit][output_bit]`` over the 7 hashable bits
    per character and the 32 output bits.  For a linear hash like H the
    entries are all 0.0/1.0.
    """
    base = base_char * length
    base_hash = hash_string(base)
    matrix: list[list[float]] = []
    for position in range(length):
        for bit in range(7):
            flipped = bytearray(base.encode("ascii"))
            flipped[position] ^= 1 << bit
            delta = base_hash ^ hash_string(bytes(flipped))
            matrix.append([float((delta >> out) & 1) for out in range(32)])
    return matrix


def bit_balance(values: Iterable[str]) -> list[float]:
    """Fraction of corpus strings setting each of the 32 output bits."""
    counts = [0] * 32
    total = 0
    for value in values:
        hval = hash_string(value)
        total += 1
        for bit in range(32):
            counts[bit] += (hval >> bit) & 1
    if total == 0:
        return [0.0] * 32
    return [count / total for count in counts]


def collision_classes(values: Iterable[str]) -> dict[int, list[str]]:
    """Group distinct strings by hash; only multi-member groups kept."""
    groups: dict[int, list[str]] = defaultdict(list)
    for value in set(values):
        groups[hash_string(value)].append(value)
    return {
        hval: sorted(members)
        for hval, members in groups.items()
        if len(members) > 1
    }


def periodicity_defect(value: str) -> str | None:
    """A distinct string with the same hash as ``value``, if one can be
    constructed by the 27-period swap.

    Characters at positions ``i`` and ``i + 27k`` XOR into the same
    c-array offset, so swapping two *different* characters that far
    apart preserves the hash.  Returns ``None`` when no such pair of
    differing characters exists (e.g. short strings).
    """
    chars = list(value)
    for i in range(len(chars)):
        for j in range(i + C_ARRAY_BITS, len(chars), C_ARRAY_BITS):
            if chars[i] != chars[j]:
                swapped = chars[:]
                swapped[i], swapped[j] = swapped[j], swapped[i]
                return "".join(swapped)
    return None
