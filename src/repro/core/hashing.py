"""The string-value hash function ``H`` and combination function ``C``.

This module implements the heart of the paper's string equality index
(Section 3): a 32-bit hash function over arbitrary-length XML string
values, designed so that the hash of a concatenation can be derived from
the hashes of the parts::

    H(concat(a, b)) == C(H(a), H(b))

The layout of a hash value follows the paper exactly.  After hashing, the
32-bit value is ``C27..C1 | OFFC``:

* bits 5..31 hold the 27-bit *c-array*, built by a circular XOR of the
  7 low bits of every character, advancing the XOR offset by 5 positions
  per character (mod 27);
* bits 0..4 hold *offc*, the offset (an element of Z_27) at which the
  next character would be XOR-ed — the state needed to continue hashing.

Because 5 and 27 are coprime, the offset cycles through all 27 positions,
spreading characters over the whole c-array.

The functions emulate the paper's C implementation on ``unsigned int``:
during the character loop, bits that overflow above c-array position 26
accumulate in bit positions 27..31 and are discarded by the final
``<<= 5`` (exactly as a 32-bit left shift does in C); the wrapped low
bits are XOR-ed back at the start of the c-array explicitly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "C_ARRAY_BITS",
    "OFFC_BITS",
    "EMPTY_HASH",
    "hash_string",
    "combine",
    "combine_all",
    "mask5",
    "mask27",
    "offset_of",
    "c_array_of",
    "HashAccumulator",
]

#: Number of bits in the c-array (character accumulator).
C_ARRAY_BITS = 27
#: Number of bits reserved for the stored offset (covers Z_27).
OFFC_BITS = 5
#: Offset advance per character.
_STEP = 5

_U32 = 0xFFFFFFFF
_MASK5 = 0x1F  # low 5 bits: the offc field
_MASK27 = _U32 & ~_MASK5  # bits 5..31: the stored c-array

#: ``H("")`` — c-array 0, offset 0.  It is the identity of ``combine``.
EMPTY_HASH = 0


def mask5(hval: int) -> int:
    """Return the *offc* field (low 5 bits) of a stored hash value."""
    return hval & _MASK5


def mask27(hval: int) -> int:
    """Return the stored c-array (bits 5..31) of a hash value."""
    return hval & _MASK27


def offset_of(hval: int) -> int:
    """Return the circular-XOR offset encoded in a hash value (0..26)."""
    return hval & _MASK5


def c_array_of(hval: int) -> int:
    """Return the 27-bit c-array of ``hval`` as an integer in [0, 2**27)."""
    return (hval >> OFFC_BITS) & ((1 << C_ARRAY_BITS) - 1)


def hash_string(value: str | bytes) -> int:
    """Hash an XML string value into a 32-bit integer (paper Figure 2).

    ``value`` may be given as ``str`` (encoded to UTF-8, matching the
    paper's "ASCII or UTF value depending the implementation" note) or as
    raw ``bytes``.  Only the 7 low bits of each byte enter the hash.

    Returns the stored form ``(c_array << 5) | offset``.
    """
    if isinstance(value, str):
        data = value.encode("utf-8")
    else:
        data = value
    if len(data) >= _VECTOR_THRESHOLD:
        return _hash_bytes_vectorized(data)
    hval = 0
    offset = 0
    for byte in data:
        c = byte & 127
        hval ^= (c << offset) & _U32
        if offset > 20:
            # Wrap the bits that fell past c-array position 26 back to
            # position 0.  (The copies left above position 26 are junk
            # that the final << 5 discards, as in 32-bit C.)
            hval ^= c >> (27 - offset)
        offset += _STEP
        if offset > 26:
            offset -= 27
    return ((hval << OFFC_BITS) & _U32) | offset


#: Below this many bytes the scalar loop beats numpy's call overhead.
_VECTOR_THRESHOLD = 48


def _hash_bytes_vectorized(data: bytes) -> int:
    """Vectorised ``H`` for long inputs.

    XOR is commutative, so the circular XOR of all characters can be
    evaluated as one reduction per lane: character ``i`` lands at offset
    ``5*i mod 27``.  Bits that overflow c-array position 26 accumulate
    above bit 26 and are discarded by the final shift-and-mask, exactly
    like the 32-bit C original; the wrapped low bits are folded in
    separately for the offsets past 20.
    """
    chars = (np.frombuffer(data, dtype=np.uint8) & 127).astype(np.uint64)
    offsets = (5 * np.arange(len(chars), dtype=np.uint64)) % 27
    hval = int(np.bitwise_xor.reduce(chars << offsets))
    high = offsets > 20
    if high.any():
        hval ^= int(np.bitwise_xor.reduce(chars[high] >> (27 - offsets[high])))
    return ((hval << OFFC_BITS) & _U32) | ((5 * len(chars)) % 27)


def hash_strings(values: list) -> list[int]:
    """Hash many string values at once (vectorised ``H``).

    Equivalent to ``[hash_string(v) for v in values]`` but evaluates
    the circular XOR for *all* strings in one pass: the inputs are
    concatenated, per-character contributions computed lane-wise, and
    ``np.bitwise_xor.reduceat`` folds each string's segment.  Used by
    the index builder, where per-node Python-loop hashing would
    otherwise dominate creation time.
    """
    if len(values) < 8:
        return [hash_string(v) for v in values]
    datas = [
        value.encode("utf-8") if isinstance(value, str) else value
        for value in values
    ]
    lens = np.fromiter((len(d) for d in datas), np.int64, len(datas))
    total = int(lens.sum())
    final_offsets = (5 * lens) % 27
    if total == 0:
        return [int(o) for o in final_offsets]
    buf = (
        np.frombuffer(b"".join(datas), dtype=np.uint8).astype(np.uint64) & 127
    )
    starts = np.zeros(len(datas), dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    local = np.arange(total, dtype=np.uint64) - np.repeat(
        starts.astype(np.uint64), lens
    )
    offsets = (5 * local) % 27
    terms = buf << offsets
    high = offsets > 20
    terms[high] ^= buf[high] >> (27 - offsets[high])
    # reduceat returns the element itself for empty segments (equal
    # consecutive indices), so fold only the non-empty ones.
    nonempty = lens > 0
    folded = np.bitwise_xor.reduceat(terms, starts[nonempty])
    c_arrays = np.zeros(len(datas), dtype=np.uint64)
    c_arrays[nonempty] = folded
    hvals = ((c_arrays << OFFC_BITS) & _U32) | final_offsets.astype(np.uint64)
    return [int(h) for h in hvals]


def combine(hleft: int, hright: int) -> int:
    """Combine two hash values (paper Figure 4).

    Returns ``H(a + b)`` given ``hleft = H(a)`` and ``hright = H(b)``,
    without access to either string.  The c-array of the right operand is
    circularly shifted left by the left operand's offset (re-basing its
    position 0 to where the left string's hashing stopped), XOR-ed into
    the left c-array, and the offsets are added mod 27.

    ``combine`` is associative and ``EMPTY_HASH`` is its identity, which
    is what makes commit-time recombination commutative-friendly
    (paper Section 5.1).
    """
    off_left = hleft & _MASK5
    c_right = hright & _MASK27
    hcomb = hleft & _MASK27
    # Circular left shift of the 27-bit c-array within its stored frame
    # (bits 5..31): bits shifted past bit 31 are the junk C discards; the
    # true wrap-around is re-inserted by the masked right shift.
    hcomb ^= ((c_right << off_left) & _U32) | ((c_right >> (27 - off_left)) & _MASK27)
    hcomb |= ((hleft & _MASK5) + (hright & _MASK5)) % 27
    return hcomb


def combine_all(hashes: Iterable[int]) -> int:
    """Fold :func:`combine` over ``hashes`` left to right.

    Returns :data:`EMPTY_HASH` for an empty iterable — the hash of the
    empty string, i.e. the string value of a node with no text content.
    """
    result = EMPTY_HASH
    for hval in hashes:
        result = combine(result, hval)
    return result


class HashAccumulator:
    """Incremental construction of ``H`` over a stream of string chunks.

    Feeding chunks ``a, b, c`` yields the same value as
    ``hash_string(a + b + c)``, in O(1) memory.  Used by the shredder to
    hash character data that the XML parser delivers in pieces.
    """

    __slots__ = ("_hval",)

    def __init__(self) -> None:
        self._hval = EMPTY_HASH

    def update(self, chunk: str | bytes) -> None:
        """Append ``chunk`` to the value being hashed."""
        self._hval = combine(self._hval, hash_string(chunk))

    def update_hash(self, hval: int) -> None:
        """Append a pre-hashed chunk."""
        self._hval = combine(self._hval, hval)

    def digest(self) -> int:
        """Return the hash of everything fed so far."""
        return self._hval

    def reset(self) -> None:
        """Forget all fed chunks, returning to ``H("")``."""
        self._hval = EMPTY_HASH
