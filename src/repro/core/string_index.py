"""The string equality index (paper Section 3).

Covers *every* document, element, attribute and text node: each node
stores the 32-bit hash of its XDM string value, and a B-tree over
``(hash, nid)`` supports equality lookups.  A lookup returns candidate
nodes for a hash; the caller verifies candidates against the actual
string value to filter hash collisions (Section 6: "keeping the false
positives — due to hash collisions — during query time to a minimum").

Index maintenance never reads document text except for the updated
text nodes themselves: ancestors recombine from their children's
stored hashes with the associative ``C`` (see
:mod:`repro.core.updater`).
"""

from __future__ import annotations

import heapq
from typing import Iterator

from ..btree import BPlusTree
from .concurrency import active_view
from .hashing import EMPTY_HASH, combine, hash_string, hash_strings

__all__ = ["StringIndex"]

_MAX_NID = 1 << 62


class StringIndex:
    """Equality index on string values via the hash function H."""

    #: Builder protocol: field contributed by absent content.
    identity = EMPTY_HASH

    def __init__(self, order: int = 64):
        # nid -> stored hash; the per-node "field" of paper Figure 7.
        self.hash_of: dict[int, int] = {}
        # B-tree on (hash, nid): equality lookup = one range scan.
        self.tree = BPlusTree(order=order, key_bytes=8, value_bytes=0)
        self._staged: list[tuple[int, int]] | None = None
        #: Counts entry changes; used to invalidate planner statistics.
        self.mutations = 0

    # ------------------------------------------------------------------
    # Builder protocol (used by repro.core.builder / updater)
    # ------------------------------------------------------------------

    def field_of_text(self, text: str) -> int:
        """H(text) — the field of a text/attribute node."""
        return hash_string(text)

    def field_of_texts(self, texts: list[str]) -> list[int]:
        """Vectorised batch form of :meth:`field_of_text`."""
        return hash_strings(texts)

    def combine(self, left: int, right: int) -> int:
        """C(left, right) — fold a child's field into an accumulator."""
        return combine(left, right)

    def begin_bulk(self) -> None:
        """Enter bulk-build mode: entries staged, tree built at the end."""
        self._staged = []

    def stage_entry(self, nid: int, field: int) -> None:
        """Record a node's field during creation (bulk mode)."""
        self.hash_of[nid] = field
        self._staged.append((field, nid))

    def stage_entries(self, pairs: list[tuple[int, int]]) -> None:
        """Batch form of :meth:`stage_entry` over ``(nid, field)`` runs
        (parallel-build replay); same effect, C-level loops."""
        self.hash_of.update(pairs)
        self._staged.extend((field, nid) for nid, field in pairs)

    def finish_bulk(self) -> None:
        """Sort staged entries and bulk-load the B-tree.

        Entries already in the tree (earlier documents) are merged in,
        so loading additional documents keeps prior coverage.
        """
        staged = self._staged
        self._staged = None
        staged.sort()
        self.mutations += len(staged)
        if len(self.tree):
            existing = list(self.tree.keys())
            entries = heapq.merge(existing, staged)
        else:
            entries = staged
        self.tree.bulk_load((key, None) for key in entries)

    def set_entry(self, nid: int, field: int) -> None:
        """Insert or refresh one node's entry (update path)."""
        old = self.hash_of.get(nid)
        if old == field:
            return
        if old is not None:
            self.tree.delete((old, nid))
        self.hash_of[nid] = field
        self.tree.insert((field, nid))
        self.mutations += 1

    def remove_entry(self, nid: int) -> None:
        """Drop a node's entry (subtree deletion)."""
        old = self.hash_of.pop(nid, None)
        if old is not None:
            self.tree.delete((old, nid))
            self.mutations += 1

    def remove_entries(self, nids) -> int:
        """Bulk form of :meth:`remove_entry` (document unload).

        Pops all stored hashes first, then drops the tree keys in one
        :meth:`~repro.btree.BPlusTree.remove_many` pass instead of one
        tree descent per node.  Returns the number of entries removed.
        """
        keys = []
        hash_of = self.hash_of
        for nid in nids:
            old = hash_of.pop(nid, None)
            if old is not None:
                keys.append((old, nid))
        if keys:
            self.tree.remove_many(keys)
            self.mutations += len(keys)
        return len(keys)

    def field_of(self, nid: int):
        """Stored field of a node; ``None`` if the node is not indexed."""
        return self.hash_of.get(nid)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _lookup_tree(self):
        """The tree to answer lookups from: the active read view's
        pinned snapshot when one is installed, else the live tree."""
        view = active_view()
        if view is not None:
            pinned = view.tree_for(self)
            if pinned is not None:
                return pinned
        return self.tree

    def lookup_hash(self, hash_value: int) -> Iterator[int]:
        """All nids whose string value hashes to ``hash_value``."""
        for (_hash, nid), _none in self._lookup_tree().range(
            (hash_value, -1), (hash_value, _MAX_NID)
        ):
            yield nid

    def candidates(self, value: str) -> Iterator[int]:
        """Candidate nids for an equality predicate on ``value``.

        May contain false positives (hash collisions); callers verify
        against the document.
        """
        return self.lookup_hash(hash_string(value))

    def candidate_nids(self, value: str) -> list[int]:
        """Batched :meth:`candidates` (one leaf-slice range scan; same
        unverified hash-bucket contents, as a list)."""
        hash_value = hash_string(value)
        keys = self._lookup_tree().range_keys(
            (hash_value, -1), (hash_value, _MAX_NID)
        )
        return [nid for _hash, nid in keys]

    # ------------------------------------------------------------------
    # Statistics / storage model
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.hash_of)

    def byte_size(self) -> int:
        """Modelled storage: a 4-byte hash per indexed node plus the
        B-tree's inner-level overhead.

        This matches the paper's accounting — XMark1's reported string
        index (17.8 MB over 4.69 M nodes) is 4 bytes/node: the hash
        column is the index; nids come from the clustered order.
        """
        return 4 * len(self.hash_of) + self.tree.inner_byte_size()
