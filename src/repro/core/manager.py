"""The index manager: the library's main entry point.

Owns a :class:`~repro.xmldb.store.Store` plus the generic value indices
over it (one string equality index, any number of typed range indices),
keeps them consistent across document loads and updates, and exposes
the lookup API the query layer plans against.

Self-tuning by construction (paper Section 1): no paths, no types to
configure — every node of every document is covered.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Any, Iterable, Iterator

import re

from ..errors import IndexError_
from ..obs import MetricsRegistry
from ..xmldb.document import ATTR, TEXT, Document
from ..xmldb.mvcc import read_epoch
from ..xmldb.store import Store, StructuralChange
from .builder import ValueIndex, compute_fields
from .concurrency import ConcurrencyController, ReadView, active_view
from .parallel import AUTO_MIN_ROWS, compute_fields_parallel, resolve_workers
from .string_index import StringIndex
from .substring_index import SubstringIndex
from .typed_index import TypedIndex
from .updater import apply_structural_change, apply_text_updates

__all__ = ["IndexManager"]

#: Statistics snapshots refresh after this many absolute mutations ...
STATS_DRIFT_MIN = 100
#: ... or once the drift exceeds this fraction of the index size.
STATS_DRIFT_DENOMINATOR = 10

#: Per-call default: "use the manager's configured ``parallel`` knob".
_DEFAULT = object()


class IndexManager:
    """Generic XML value indices over a document store.

    Args:
        store: The document store to index (a fresh one by default).
        string: Build the string equality index.
        typed: XML type names to build range indices for.
        order: B-tree order for all index trees.
        parallel: Default creation-pass parallelism — ``None`` (serial),
            ``"auto"`` (available CPUs, skipping small documents) or a
            worker count.  Per-call overrides exist on the build
            methods; updates are always serial (they touch few nodes).
        parallel_backend: ``"process"`` (default) or ``"thread"``; see
            :mod:`repro.core.parallel`.
    """

    def __init__(
        self,
        store: Store | None = None,
        string: bool = True,
        typed: Iterable[str] = ("double",),
        substring: bool = False,
        substring_q: int = 3,
        order: int = 64,
        parallel: int | str | None = None,
        parallel_backend: str = "process",
    ):
        self.store = store if store is not None else Store()
        self.string_index: StringIndex | None = (
            StringIndex(order=order) if string else None
        )
        self.typed_indexes: dict[str, TypedIndex] = {
            name: TypedIndex(name, order=order) for name in typed
        }
        self.substring_index: SubstringIndex | None = (
            SubstringIndex(q=substring_q) if substring else None
        )
        self._order = order
        self.parallel = parallel
        self.parallel_backend = parallel_backend
        self._statistics_cache: dict[str, object] = {}
        # name -> value-leaf nids, pre order (scan fallback for
        # substring/regex lookups; invalidated on structural changes).
        self._leaf_nids_cache: dict[str, list[int]] = {}
        # (function, literal) -> (epoch key, nids): memoized contains/
        # regex results, valid for exactly one mutation epoch (pinned
        # views key on their own epoch, so concurrent readers at
        # different snapshots never share an entry).
        self._text_lookup_cache: dict[
            tuple[str, str], tuple[object, list[int]]
        ] = {}
        #: Runtime counters and timers (build/update/query/WAL paths).
        self.metrics = MetricsRegistry()
        #: Mutation epoch: bumped by every operation that changes what a
        #: query may return (loads, unloads, updates, new indices).  The
        #: planner keys its plan cache on this.
        self.epoch = 0
        # (query text, document, mode) -> (epoch, plan); owned by
        # repro.query.planner, stored here so it shares the manager's
        # lifetime and invalidation.
        self._plan_cache: dict[tuple, tuple[int, object]] = {}
        #: Guards plan-cache mutations (lookups stay lock-free).
        self._plan_lock = threading.Lock()
        #: Concurrent serving support; None until enabled (see
        #: :mod:`repro.core.concurrency`).  Every hot path pays one
        #: ``is None`` check when disabled.
        self.concurrency: ConcurrencyController | None = None

    def bump_epoch(self) -> None:
        """Invalidate cached query plans (document/index set changed)."""
        self.epoch += 1

    # ------------------------------------------------------------------
    # Concurrent serving
    # ------------------------------------------------------------------

    def enable_concurrency(self) -> ConcurrencyController:
        """Activate snapshot-isolated serving (idempotent).

        After this, writers publish epoch snapshots and readers may pin
        them via :meth:`read_view`; single-threaded call patterns keep
        working unchanged.
        """
        if self.concurrency is None:
            self.concurrency = ConcurrencyController(self)
        return self.concurrency

    def read_view(self) -> ReadView:
        """A pinned snapshot view (context manager); requires
        :meth:`enable_concurrency`."""
        if self.concurrency is None:
            raise IndexError_("concurrency not enabled on this manager")
        return self.concurrency.read_view()

    def _exclusive(self, structural: bool = True):
        """Latch scope for structural changes (no-op when disabled).

        ``structural=False`` marks exclusive scopes that only *add*
        state (e.g. adopting a migrated document): existing documents'
        columns are untouched and the B-trees are republished
        copy-on-write, so session pins stay valid.
        """
        if self.concurrency is None:
            return nullcontext()
        return self.concurrency.exclusive(structural=structural)

    @property
    def indexes(self) -> list[ValueIndex]:
        """All active indices, string first."""
        result: list[ValueIndex] = []
        if self.string_index is not None:
            result.append(self.string_index)
        result.extend(self.typed_indexes.values())
        return result

    def typed_index(self, type_name: str) -> TypedIndex:
        index = self.typed_indexes.get(type_name)
        if index is None:
            raise IndexError_(
                f"no typed index for {type_name!r}; "
                f"available: {sorted(self.typed_indexes)}"
            )
        return index

    def add_typed_index(
        self, type_name: str, parallel: int | str | None = _DEFAULT
    ) -> TypedIndex:
        """Create (and build) an additional typed index."""
        if type_name in self.typed_indexes:
            raise IndexError_(f"typed index {type_name!r} already exists")
        with self._exclusive():
            index = TypedIndex(type_name, order=self._order)
            self.typed_indexes[type_name] = index
            with self.metrics.timer("index.build").time():
                index.begin_bulk()
                for doc in self.store.documents.values():
                    self._compute_document(doc, [index], parallel)
                index.finish_bulk()
            self.metrics.counter("index.builds").inc()
            self.bump_epoch()
        return index

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _build_workers(self, doc: Document, parallel) -> int:
        """Resolve a per-call/configured knob to a worker count for
        ``doc`` (0 = serial).  ``"auto"`` skips small documents, where
        pool dispatch costs more than the pass itself."""
        knob = self.parallel if parallel is _DEFAULT else parallel
        if knob == "auto" and len(doc) < AUTO_MIN_ROWS:
            return 0
        return resolve_workers(knob)

    def _compute_document(
        self, doc: Document, indexes: list[ValueIndex], parallel
    ) -> None:
        """One Figure 7 pass over ``doc`` (serial or chunked/pooled)."""
        if not indexes:
            return
        workers = self._build_workers(doc, parallel)
        if workers <= 0:
            compute_fields(doc, 0, len(doc) - 1, indexes, bulk=True)
        else:
            compute_fields_parallel(
                doc, indexes, workers, backend=self.parallel_backend
            )

    def _build_document(self, doc: Document, parallel,
                        structural: bool = True) -> None:
        with self._exclusive(structural=structural):
            with self.metrics.timer("index.build").time():
                indexes = self.indexes
                for index in indexes:
                    index.begin_bulk()
                self._compute_document(doc, indexes, parallel)
                for index in indexes:
                    index.finish_bulk()
                self._substring_add_range(doc, 0, len(doc) - 1)
            self.metrics.counter("index.builds").inc()
            self._leaf_nids_cache.pop(doc.name, None)
            self.bump_epoch()

    def load(
        self, name: str, xml: str, parallel: int | str | None = _DEFAULT
    ) -> Document:
        """Shred a document and index it (shred + Figure 7 pass)."""
        doc = self.store.add_document(name, xml)
        self._build_document(doc, parallel)
        return doc

    def load_events(
        self, name: str, events, parallel: int | str | None = _DEFAULT
    ) -> Document:
        """Shred a pre-parsed event stream and index it."""
        doc = self.store.add_document_events(name, events)
        self._build_document(doc, parallel)
        return doc

    def adopt_document(
        self, doc: Document, parallel: int | str | None = _DEFAULT
    ) -> Document:
        """Index a document decoded from another engine's snapshot
        (shard migration import).

        The store keeps the incoming nids when possible (cluster
        shards mint from disjoint ranges, so node identity survives
        the move) and remaps only on collision; index fields are then
        recomputed with the ordinary Figure 7 pass — hashing and FSM
        typing are deterministic functions of the text, so the
        rebuilt entries match the source's exactly.

        Unlike :meth:`load` this build is *non-structural* for pinned
        readers: adopting only adds a document (no existing column is
        spliced, and ``finish_bulk`` republishes the trees
        copy-on-write), so session pins opened before the import stay
        valid — a migration must not invalidate in-flight cluster
        views on the destination shard.
        """
        doc = self.store.adopt_document(doc)
        self._build_document(doc, parallel, structural=False)
        return doc

    def _substring_add_range(self, doc: Document, start: int, end: int) -> None:
        if self.substring_index is None:
            return
        set_entry = self.substring_index.set_entry
        for pre in range(start, end + 1):
            if doc.kind[pre] in (TEXT, ATTR):
                set_entry(doc.nid[pre], doc.text_of(pre))

    def build_all(self, parallel: int | str | None = _DEFAULT) -> None:
        """(Re)build all indices over all documents already in the store."""
        with self._exclusive():
            with self.metrics.timer("index.build").time():
                for index in self.indexes:
                    index.begin_bulk()
                for doc in self.store.documents.values():
                    self._compute_document(doc, self.indexes, parallel)
                    self._substring_add_range(doc, 0, len(doc) - 1)
                for index in self.indexes:
                    index.finish_bulk()
            self.metrics.counter("index.builds").inc()
            self.bump_epoch()

    def unload(self, name: str) -> None:
        """Drop a document and all its index entries (one bulk pass per
        index instead of one tree descent per node)."""
        with self._exclusive():
            doc = self.store.document(name)
            nids = doc.nid
            for index in self.indexes:
                index.remove_entries(nids)
            if self.substring_index is not None:
                self.substring_index.remove_entries(nids)
            self.store.remove_document(name)
            self._leaf_nids_cache.pop(name, None)
            self.bump_epoch()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update_text(self, nid: int, new_text: str) -> int:
        """Update one text/attribute node's value and maintain indices."""
        return self.update_texts([(nid, new_text)])

    def update_texts(self, updates: Iterable[tuple[int, str]]) -> int:
        """Batch text-value update (the paper's Figure 10 workload).

        Applies all store writes first, then runs one maintenance pass
        (Figure 8) over the distinct updated nodes, so shared ancestors
        recompute once.  Returns the number of recomputed entries.

        Under a concurrency controller this is the MVCC path: the
        writer holds the latch *shared* (readers keep running),
        records every overwritten text slot's before-value in the
        document overlay, and publishes a new index snapshot at the
        end.  The substring index mutates its gram postings in place
        and cannot be snapshotted, so its presence forces the
        exclusive latch instead.
        """
        controller = self.concurrency
        if controller is None:
            scope = nullcontext(None)
        elif self.substring_index is not None:
            scope = controller.exclusive()
        else:
            scope = controller.text_update()
        with scope as write_epoch:
            nids: list[int] = []
            seen: set[int] = set()
            with self.metrics.timer("index.update").time():
                for nid, new_text in updates:
                    if write_epoch is not None:
                        self._record_before_value(nid, write_epoch)
                    self.store.update_text(nid, new_text)
                    if nid not in seen:
                        seen.add(nid)
                        nids.append(nid)
                if self.substring_index is not None:
                    for nid in nids:
                        doc, pre = self.store.node(nid)
                        if doc.kind[pre] in (TEXT, ATTR):
                            self.substring_index.set_entry(
                                nid, doc.text_of(pre)
                            )
                recomputed = apply_text_updates(self.store, nids, self.indexes)
            self.metrics.counter("index.updates").inc(len(nids))
            self.bump_epoch()
        return recomputed

    def _record_before_value(self, nid: int, write_epoch: int) -> None:
        """Save a text slot's current value to the MVCC overlay.

        Runs *before* the heap write, so a reader pinned below
        ``write_epoch`` always finds the old value — in the heap if it
        races ahead of the write, in the overlay after it.
        """
        doc, pre = self.store.node(nid)
        slot = doc.text_id[pre]
        if slot >= 0 and doc.text_overlay is not None:
            doc.text_overlay.record(slot, write_epoch, doc.texts[slot])

    def delete_subtree(self, nid: int) -> StructuralChange:
        """Delete a subtree and maintain indices (stop-the-world:
        structural splices take the exclusive latch, see
        docs/concurrency.md)."""
        with self._exclusive():
            with self.metrics.timer("index.update").time():
                change = self.store.delete_subtree(nid)
                apply_structural_change(self.store, change, self.indexes)
                self._substring_apply_change(change)
            self.metrics.counter("index.updates").inc()
            self.bump_epoch()
        return change

    def insert_xml(
        self, parent_nid: int, fragment: str, before_nid: int | None = None
    ) -> StructuralChange:
        """Insert an XML fragment and maintain indices (stop-the-world)."""
        with self._exclusive():
            with self.metrics.timer("index.update").time():
                change = self.store.insert_xml(parent_nid, fragment, before_nid)
                apply_structural_change(self.store, change, self.indexes)
                self._substring_apply_change(change)
            self.metrics.counter("index.updates").inc()
            self.bump_epoch()
        return change

    def insert_attribute(
        self, owner_nid: int, name: str, value: str
    ) -> StructuralChange:
        """Add an attribute to an element and index its value
        (stop-the-world)."""
        with self._exclusive():
            with self.metrics.timer("index.update").time():
                change = self.store.insert_attribute(owner_nid, name, value)
                apply_structural_change(self.store, change, self.indexes)
                self._substring_apply_change(change)
            self.metrics.counter("index.updates").inc()
            self.bump_epoch()
        return change

    def delete_attribute(self, attr_nid: int) -> StructuralChange:
        """Remove an attribute node and drop its index entries."""
        doc, pre = self.store.node(attr_nid)
        if doc.kind[pre] != ATTR:
            raise IndexError_(f"node {attr_nid} is not an attribute")
        return self.delete_subtree(attr_nid)

    def rename(self, nid: int, new_name: str) -> None:
        """Rename an element/attribute/PI — no index maintenance needed
        (the generic indices are name-agnostic by design)."""
        with self._exclusive():
            self.store.rename(nid, new_name)
            # A rename can change which nodes a name test selects.
            self.bump_epoch()

    def _substring_apply_change(self, change: StructuralChange) -> None:
        self._leaf_nids_cache.pop(change.document.name, None)
        if self.substring_index is None:
            return
        for nid in change.removed_nids:
            self.substring_index.remove_entry(nid)
        doc = change.document
        for nid in change.added_nids:
            pre = doc.pre_of(nid)
            if doc.kind[pre] in (TEXT, ATTR):
                self.substring_index.set_entry(nid, doc.text_of(pre))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def lookup_string(self, value: str, verify: bool = True) -> Iterator[int]:
        """nids whose XDM string value equals ``value``.

        With ``verify`` (default) candidates from the hash index are
        checked against the document, eliminating hash collisions.
        """
        if self.string_index is None:
            raise IndexError_("string index not enabled")
        for nid in self.string_index.candidates(value):
            if not verify:
                yield nid
                continue
            doc, pre = self.store.node(nid)
            if doc.string_value(pre) == value:
                yield nid

    def lookup_typed_equal(self, type_name: str, value: Any) -> Iterator[int]:
        """nids whose typed value equals ``value`` (exact, no verify)."""
        return self.typed_index(type_name).lookup_equal(value)

    def lookup_typed_range(
        self,
        type_name: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        """(value, nid) pairs in the given typed-value interval."""
        return self.typed_index(type_name).lookup_range(
            low, high, include_low=include_low, include_high=include_high
        )

    def lookup_typed_range_nids(
        self,
        type_name: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[int]:
        """Batched :meth:`lookup_typed_range` returning just the nids
        (leaf-slice collection, no per-entry generator frames)."""
        return self.typed_index(type_name).range_nids(
            low, high, include_low=include_low, include_high=include_high
        )

    def lookup_typed_equal_nids(self, type_name: str, value: Any) -> list[int]:
        """Batched :meth:`lookup_typed_equal` (exact, no verify)."""
        return self.typed_index(type_name).equal_nids(value)

    def lookup_typed_top(
        self, type_name: str, k: int, largest: bool = True
    ) -> list[tuple[Any, int]]:
        """The k largest (or smallest) typed values with their nodes."""
        return self.typed_index(type_name).top_values(k, largest=largest)

    def _leaf_nids_of(self, doc: Document) -> list[int]:
        """Value-leaf nids of one document, pre order (cached; the
        cache entry is dropped whenever the document's node set
        changes, so scans never re-walk an unchanged document)."""
        cached = self._leaf_nids_cache.get(doc.name)
        if cached is None:
            kinds = doc.kind
            cached = [
                doc.nid[pre]
                for pre in range(len(doc))
                if kinds[pre] in (TEXT, ATTR)
            ]
            self._leaf_nids_cache[doc.name] = cached
        return cached

    def _all_leaf_nids(self) -> Iterator[int]:
        for doc in self.store.documents.values():
            yield from self._leaf_nids_of(doc)

    def _text_lookup_epoch(self) -> object:
        """Cache key component for text-scan lookups: the pinned
        view's epoch inside a read view, else the live mutation epoch
        (bumped by every result-changing operation)."""
        view = active_view()
        if view is not None and view.epoch is not None:
            return ("view", view.epoch)
        return ("live", self.epoch)

    def _cached_text_lookup(self, function: str, literal: str):
        entry = self._text_lookup_cache.get((function, literal))
        if entry is not None and entry[0] == self._text_lookup_epoch():
            self.metrics.counter("query.text_lookup.cache_hits").inc()
            return entry[1]
        return None

    def _store_text_lookup(
        self, function: str, literal: str, nids: list[int]
    ) -> None:
        cache = self._text_lookup_cache
        if len(cache) >= 128:
            cache.clear()
        cache[(function, literal)] = (self._text_lookup_epoch(), nids)

    def _scan_contains(self, doc: Document, needle: str) -> list[int]:
        """All leaf nids of one document whose text contains
        ``needle``, via the joined-region kernel when the document's
        texts are directly addressable (no pinned MVCC overlay)."""
        from .classify import containing_indices

        leaf_nids = self._leaf_nids_of(doc)
        if doc.text_overlay is None or read_epoch() is None:
            cols = doc.columns()
            if cols is not None:
                leaf = (cols.kind == TEXT) | (cols.kind == ATTR)
                slots = cols.text_id[leaf].tolist()
                texts = doc.texts
                leaf_texts = [texts[slot] for slot in slots]
                matches = containing_indices(leaf_texts, needle)
                if matches is not None:
                    return [leaf_nids[i] for i in matches]
        pre_of = doc.pre_of
        text_of = doc.text_of
        return [
            nid
            for nid in leaf_nids
            if needle in text_of(pre_of(nid))
        ]

    def lookup_contains(self, needle: str) -> Iterator[int]:
        """Value-leaf nids whose own text contains ``needle``.

        Uses the q-gram substring index when it can prune (needle at
        least ``q`` long); otherwise scans the cached leaves with the
        joined-region ``contains`` kernel.  Candidates are sorted so
        results are emitted in a deterministic order either way, and
        always verified (exact).  Results are memoized per mutation
        epoch (repeated substring queries on an unchanged database are
        answered from the cache).
        """
        cached = self._cached_text_lookup("contains", needle)
        if cached is not None:
            return iter(cached)
        candidates: Iterable[int] | None = None
        if self.substring_index is not None:
            pruned = self.substring_index.candidates(needle)
            if pruned is not None:
                candidates = sorted(pruned)
        if candidates is None:
            result = []
            for doc in self.store.documents.values():
                result.extend(self._scan_contains(doc, needle))
        else:
            result = []
            node = self.store.node
            for nid in candidates:
                doc, pre = node(nid)
                if needle in doc.text_of(pre):
                    result.append(nid)
        self._store_text_lookup("contains", needle, result)
        return iter(result)

    def lookup_regex(self, pattern: str) -> Iterator[int]:
        """Value-leaf nids whose own text matches ``pattern`` (search
        semantics).  Mandatory literal factors of the pattern prune
        through the substring index when possible.  Results are
        memoized per mutation epoch.  (Regex search stays per text:
        a joined-region scan would be unsound — anchors, ``.`` and
        quantifiers can straddle the sentinel.)"""
        cached = self._cached_text_lookup("regex", pattern)
        if cached is not None:
            return iter(cached)
        compiled = re.compile(pattern)
        candidates: Iterable[int] | None = None
        if self.substring_index is not None:
            pruned = self.substring_index.candidates_for_regex(pattern)
            if pruned is not None:
                candidates = sorted(pruned)
        if candidates is None:
            candidates = self._all_leaf_nids()
        result = []
        node = self.store.node
        for nid in candidates:
            doc, pre = node(nid)
            if compiled.search(doc.text_of(pre)):
                result.append(nid)
        self._store_text_lookup("regex", pattern, result)
        return iter(result)

    # ------------------------------------------------------------------
    # Planner statistics
    # ------------------------------------------------------------------

    def statistics(self, kind: str):
        """Selectivity statistics for one index (cached snapshots).

        ``kind`` is ``"string"`` or a typed-index name.  Snapshots are
        recomputed once the index has drifted by more than
        :data:`STATS_DRIFT_MIN` mutations or ``1/STATS_DRIFT_DENOMINATOR``
        of its size since they were taken.

        Inside a read view the statistics come from the view's pinned
        trees instead (memoized per view), so a plan priced at epoch E
        never mixes in a newer epoch's distribution.
        """
        from .statistics import StringIndexStatistics, TypedIndexStatistics

        view = active_view()
        if view is not None:
            return view.statistics(kind)

        if kind == "string":
            if self.string_index is None:
                raise IndexError_("string index not enabled")
            index = self.string_index
        else:
            index = self.typed_index(kind)
        cached = self._statistics_cache.get(kind)
        if cached is not None:
            drift = index.mutations - cached.mutations
            threshold = max(
                STATS_DRIFT_MIN, len(index.tree) // STATS_DRIFT_DENOMINATOR
            )
            if drift <= threshold:
                self.metrics.counter("statistics.cached").inc()
                return cached
        with self.metrics.timer("statistics.refresh").time():
            if kind == "string":
                snapshot = StringIndexStatistics.from_index(index)
            else:
                snapshot = TypedIndexStatistics.from_index(index)
        self.metrics.counter("statistics.refreshes").inc()
        self._statistics_cache[kind] = snapshot
        return snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_sizes(self) -> dict[str, int]:
        """Modelled byte size per index (Figure 9 bottom)."""
        sizes: dict[str, int] = {}
        if self.string_index is not None:
            sizes["string"] = self.string_index.byte_size()
        for name, index in self.typed_indexes.items():
            sizes[name] = index.byte_size()
        if self.substring_index is not None:
            sizes["substring"] = self.substring_index.byte_size()
        return sizes

    def check_consistency(self) -> None:
        """Verify all index fields against freshly computed ones.

        Test support: rebuilds every index from scratch and compares
        stored fields, value-tree contents and entry counts.
        """
        rebuilt = IndexManager(
            store=self.store,
            string=self.string_index is not None,
            typed=tuple(self.typed_indexes),
            order=self._order,
        )
        rebuilt.build_all()
        if self.string_index is not None:
            fresh = rebuilt.string_index
            assert self.string_index.hash_of == fresh.hash_of
            assert list(self.string_index.tree.keys()) == list(fresh.tree.keys())
        for name, index in self.typed_indexes.items():
            fresh_typed = rebuilt.typed_indexes[name]
            assert index.fragment_of_node == fresh_typed.fragment_of_node, name
            assert list(index.tree.keys()) == list(fresh_typed.tree.keys()), name
