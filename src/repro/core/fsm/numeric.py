"""``xs:integer`` and ``xs:decimal`` lexical machines.

Both are restrictions of the double machine (no exponent; integer also
has no fraction).  They exist to demonstrate the paper's claim that the
FSM/SCT technique applies to "any XML built-in type ... by applying the
same ideas" — one DFA declaration per type is all it takes.
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation
from typing import Sequence

from .fragment import Token, TypePlugin
from .machine import DfaSpec

__all__ = ["INTEGER_SPEC", "DECIMAL_SPEC", "make_integer_plugin", "make_decimal_plugin"]

INTEGER_SPEC = DfaSpec(
    name="integer",
    states=["start", "sign", "int", "wsend"],
    initial="start",
    finals={"int", "wsend"},
    classes={"ws": " \t\n\r", "digit": "0123456789", "sign": "+-"},
    transitions={
        ("start", "ws"): "start",
        ("start", "sign"): "sign",
        ("start", "digit"): "int",
        ("sign", "digit"): "int",
        ("int", "digit"): "int",
        ("int", "ws"): "wsend",
        ("wsend", "ws"): "wsend",
    },
)

DECIMAL_SPEC = DfaSpec(
    name="decimal",
    states=["start", "sign", "int", "dot0", "dotint", "frac", "wsend"],
    initial="start",
    finals={"int", "dotint", "frac", "wsend"},
    classes={"ws": " \t\n\r", "digit": "0123456789", "sign": "+-", "dot": "."},
    transitions={
        ("start", "ws"): "start",
        ("start", "sign"): "sign",
        ("start", "digit"): "int",
        ("start", "dot"): "dot0",
        ("sign", "digit"): "int",
        ("sign", "dot"): "dot0",
        ("int", "digit"): "int",
        ("int", "dot"): "dotint",
        ("int", "ws"): "wsend",
        ("dot0", "digit"): "frac",
        ("dotint", "digit"): "frac",
        ("dotint", "ws"): "wsend",
        ("frac", "digit"): "frac",
        ("frac", "ws"): "wsend",
        ("wsend", "ws"): "wsend",
    },
)


def _cast_integer(plugin: TypePlugin, tokens: Sequence[Token]) -> int | None:
    try:
        return int(plugin.render(tokens))
    except ValueError:  # pragma: no cover - defensive
        return None


def _cast_decimal(plugin: TypePlugin, tokens: Sequence[Token]) -> Decimal | None:
    try:
        return Decimal(plugin.render(tokens).strip())
    except InvalidOperation:  # pragma: no cover - defensive
        return None


def make_integer_plugin() -> TypePlugin:
    return TypePlugin(
        name="integer",
        dfa=INTEGER_SPEC.compile(),
        cast=_cast_integer,
        run_classes=("digit",),
        collapse_classes=("ws",),
        char_classes=("sign",),
        spellings={"ws": " "},
    )


def make_decimal_plugin() -> TypePlugin:
    return TypePlugin(
        name="decimal",
        dfa=DECIMAL_SPEC.compile(),
        cast=_cast_decimal,
        run_classes=("digit",),
        collapse_classes=("ws",),
        char_classes=("sign",),
        spellings={"ws": " "},
    )
