"""Finite state machines, transition monoids (SCTs) and type plugins.

This package implements Section 4 of the paper: per-type lexical DFAs,
the normalised-FSM/SCT construction (as the DFA's transition monoid),
and the fragment algebra the typed range index stores per node.
"""

from .fragment import Fragment, REJECT_FRAGMENT, Token, TypePlugin
from .machine import DEAD, Dfa, DfaSpec
from .monoid import REJECT, TransitionMonoid
from .pattern import PatternError, compile_pattern, pattern_plugin
from .registry import available_types, get_plugin, register_type

__all__ = [
    "DEAD",
    "REJECT",
    "REJECT_FRAGMENT",
    "Dfa",
    "DfaSpec",
    "Fragment",
    "Token",
    "PatternError",
    "TransitionMonoid",
    "TypePlugin",
    "compile_pattern",
    "pattern_plugin",
    "available_types",
    "get_plugin",
    "register_type",
]
