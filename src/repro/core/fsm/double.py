"""The ``xs:double`` lexical machine (paper Figure 5).

The machine accepts ``ws* sign? (digits ('.' digits?)? | '.' digits)
((e|E) sign? digits)? ws*`` — the XML Schema double lexical space minus
the special values ``INF``/``-INF``/``NaN``, exactly as the paper's
Figure 5 does.  An index on doubles accelerates predicates on all
numerical XQuery types (paper Section 4).
"""

from __future__ import annotations

from typing import Sequence

from .fragment import Token, TypePlugin
from .machine import DfaSpec

__all__ = ["DOUBLE_SPEC", "make_double_plugin"]

DOUBLE_SPEC = DfaSpec(
    name="double",
    states=[
        "start",  # leading whitespace
        "sign",  # after mantissa sign
        "int",  # integer digits
        "dot0",  # '.' with no integer digits yet (".5" forms)
        "dotint",  # '.' after integer digits ("12." is a valid double)
        "frac",  # fraction digits
        "e",  # after the exponent marker
        "esign",  # after the exponent sign
        "exp",  # exponent digits
        "wsend",  # trailing whitespace
    ],
    initial="start",
    finals={"int", "dotint", "frac", "exp", "wsend"},
    classes={
        "ws": " \t\n\r",
        "digit": "0123456789",
        "sign": "+-",
        "dot": ".",
        "exp": "eE",
    },
    transitions={
        ("start", "ws"): "start",
        ("start", "sign"): "sign",
        ("start", "digit"): "int",
        ("start", "dot"): "dot0",
        ("sign", "digit"): "int",
        ("sign", "dot"): "dot0",
        ("int", "digit"): "int",
        ("int", "dot"): "dotint",
        ("int", "exp"): "e",
        ("int", "ws"): "wsend",
        ("dot0", "digit"): "frac",
        ("dotint", "digit"): "frac",
        ("dotint", "exp"): "e",
        ("dotint", "ws"): "wsend",
        ("frac", "digit"): "frac",
        ("frac", "exp"): "e",
        ("frac", "ws"): "wsend",
        ("e", "sign"): "esign",
        ("e", "digit"): "exp",
        ("esign", "digit"): "exp",
        ("exp", "digit"): "exp",
        ("exp", "ws"): "wsend",
        ("wsend", "ws"): "wsend",
    },
)


def _cast_double(plugin: TypePlugin, tokens: Sequence[Token]) -> float | None:
    """IEEE-754 value of a castable double fragment.

    Rendering the tokens and letting ``float`` parse them gives exact
    IEEE semantics, including overflow to ``inf`` for huge exponents.
    """
    try:
        return float(plugin.render(tokens))
    except (ValueError, OverflowError):  # pragma: no cover - defensive
        return None


def make_double_plugin() -> TypePlugin:
    """Build the double plugin (fresh monoid/SCT)."""
    return TypePlugin(
        name="double",
        dfa=DOUBLE_SPEC.compile(),
        cast=_cast_double,
        run_classes=("digit",),
        collapse_classes=("ws",),
        char_classes=("sign",),
        spellings={"ws": " ", "exp": "E"},
    )
