"""``xs:dateTime``, ``xs:date`` and ``xs:time`` lexical machines.

The paper singles out ``xs:dateTime`` (next to ``xs:double``) as a type
"of particular interest" for the range index.  These machines count
digits positionally (``YYYY-MM-DDThh:mm:ss(.s+)?(Z|±hh:mm)?``), which
exercises the transition-monoid construction on a shape very different
from the numeric types.

Casting validates field ranges (month 13 passes the DFA but is not a
dateTime) and maps the value onto a ``Decimal`` count of UTC seconds
since the Unix epoch, using the from-scratch proleptic Gregorian
arithmetic in :mod:`repro.core.fsm.calendar`.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Sequence

from .calendar import days_from_civil, days_in_month
from .fragment import Token, TypePlugin
from .machine import DfaSpec

__all__ = [
    "DATETIME_SPEC",
    "DATE_SPEC",
    "TIME_SPEC",
    "make_datetime_plugin",
    "make_date_plugin",
    "make_time_plugin",
]

_CLASSES = {
    "ws": " \t\n\r",
    "digit": "0123456789",
    "dash": "-",
    "colon": ":",
    "T": "T",
    "dot": ".",
    "Z": "Z",
    "plus": "+",
}


def _chain(transitions: dict, states: list[str], path: Sequence[tuple[str, str, str]]):
    """Append ``(src, class, dst)`` edges, creating states on the way."""
    for src, cls, dst in path:
        if dst not in states:
            states.append(dst)
        transitions[(src, cls)] = dst


def _tz_suffix(transitions: dict, states: list[str], from_states: Sequence[str]):
    """Wire the timezone suffix (``Z`` or ``±hh:mm``) plus trailing ws."""
    for state in ("tzz", "tzh0"):
        if state not in states:
            states.append(state)
    for src in from_states:
        transitions[(src, "Z")] = "tzz"
        transitions[(src, "plus")] = "tzh0"
        transitions[(src, "dash")] = "tzh0"
        transitions[(src, "ws")] = "wsend"
    _chain(
        transitions,
        states,
        [
            ("tzh0", "digit", "tzh1"),
            ("tzh1", "digit", "tzh2"),
            ("tzh2", "colon", "tzm0"),
            ("tzm0", "digit", "tzm1"),
            ("tzm1", "digit", "tzm2"),
            ("tzm2", "ws", "wsend"),
            ("tzz", "ws", "wsend"),
            ("wsend", "ws", "wsend"),
        ],
    )


def _date_prefix(transitions: dict, states: list[str]):
    """``ws* '-'? YYYY-MM-DD`` up to state ``d2``."""
    _chain(
        transitions,
        states,
        [
            ("start", "ws", "start"),
            ("start", "dash", "neg"),
            ("start", "digit", "y1"),
            ("neg", "digit", "y1"),
            ("y1", "digit", "y2"),
            ("y2", "digit", "y3"),
            ("y3", "digit", "y4"),
            ("y4", "dash", "mon0"),
            ("mon0", "digit", "m1"),
            ("m1", "digit", "m2"),
            ("m2", "dash", "day0"),
            ("day0", "digit", "d1"),
            ("d1", "digit", "d2"),
        ],
    )


def _time_body(transitions: dict, states: list[str], entry: str):
    """``hh:mm:ss('.'s+)?`` starting from state ``entry``."""
    _chain(
        transitions,
        states,
        [
            (entry, "digit", "h1"),
            ("h1", "digit", "h2"),
            ("h2", "colon", "min0"),
            ("min0", "digit", "mi1"),
            ("mi1", "digit", "mi2"),
            ("mi2", "colon", "sec0"),
            ("sec0", "digit", "s1"),
            ("s1", "digit", "s2"),
            ("s2", "dot", "fr0"),
            ("fr0", "digit", "fr"),
            ("fr", "digit", "fr"),
        ],
    )


def _build_datetime_spec() -> DfaSpec:
    states = ["start"]
    transitions: dict = {}
    _date_prefix(transitions, states)
    _chain(transitions, states, [("d2", "T", "t0")])
    _time_body(transitions, states, "t0")
    _tz_suffix(transitions, states, ["s2", "fr"])
    return DfaSpec(
        name="dateTime",
        states=states,
        initial="start",
        finals={"s2", "fr", "tzz", "tzm2", "wsend"},
        classes=_CLASSES,
        transitions=transitions,
    )


def _build_date_spec() -> DfaSpec:
    states = ["start"]
    transitions: dict = {}
    _date_prefix(transitions, states)
    _tz_suffix(transitions, states, ["d2"])
    return DfaSpec(
        name="date",
        states=states,
        initial="start",
        finals={"d2", "tzz", "tzm2", "wsend"},
        classes=_CLASSES,
        transitions=transitions,
    )


def _build_time_spec() -> DfaSpec:
    states = ["start"]
    transitions: dict = {("start", "ws"): "start"}
    _time_body(transitions, states, "start")
    _tz_suffix(transitions, states, ["s2", "fr"])
    return DfaSpec(
        name="time",
        states=states,
        initial="start",
        finals={"s2", "fr", "tzz", "tzm2", "wsend"},
        classes=_CLASSES,
        transitions=transitions,
    )


DATETIME_SPEC = _build_datetime_spec()
DATE_SPEC = _build_date_spec()
TIME_SPEC = _build_time_spec()


class _TokenWalker:
    """Structural cursor over a castable fragment's tokens."""

    def __init__(self, plugin: TypePlugin, tokens: Sequence[Token]):
        self._class_id = {cls: i for i, cls in enumerate(plugin.dfa.class_names)}
        self._tokens = tokens
        self._pos = 0

    def skip_ws(self) -> None:
        ws = self._class_id["ws"]
        while self._pos < len(self._tokens) and self._tokens[self._pos][0] == ws:
            self._pos += 1

    def take(self, cls: str) -> bool:
        """Consume one token of class ``cls`` if present."""
        if self._pos < len(self._tokens):
            if self._tokens[self._pos][0] == self._class_id[cls]:
                self._pos += 1
                return True
        return False

    def digits(self, expected_length: int | None = None) -> tuple[int, int]:
        """Consume a digit-run token, returning ``(value, length)``."""
        cid, value, length = self._tokens[self._pos]
        if cid != self._class_id["digit"]:
            raise ValueError("expected digits")
        if expected_length is not None and length != expected_length:
            raise ValueError("unexpected digit-run length")
        self._pos += 1
        return value, length


def _timezone_minutes(walker: _TokenWalker) -> int | None:
    """Parse the optional timezone; UTC offset in minutes or ``None``.

    Raises ``ValueError`` on out-of-range offsets (|offset| > 14:00).
    """
    if walker.take("Z"):
        return 0
    sign = 0
    if walker.take("plus"):
        sign = 1
    elif walker.take("dash"):
        sign = -1
    if sign == 0:
        return None
    hours, _ = walker.digits(2)
    if not walker.take("colon"):
        raise ValueError("expected ':' in timezone")
    minutes, _ = walker.digits(2)
    if hours > 14 or minutes > 59 or (hours == 14 and minutes != 0):
        raise ValueError("timezone out of range")
    return sign * (hours * 60 + minutes)


def _parse_time_of_day(walker: _TokenWalker) -> Decimal:
    """Parse ``hh:mm:ss(.s+)?``; seconds from midnight as ``Decimal``."""
    hour, _ = walker.digits(2)
    if not walker.take("colon"):
        raise ValueError("expected ':'")
    minute, _ = walker.digits(2)
    if not walker.take("colon"):
        raise ValueError("expected ':'")
    second, _ = walker.digits(2)
    fraction = Decimal(0)
    if walker.take("dot"):
        value, length = walker.digits()
        fraction = Decimal(value) / (Decimal(10) ** length)
    if hour > 24 or minute > 59 or second > 59:
        raise ValueError("time field out of range")
    if hour == 24 and (minute or second or fraction):
        raise ValueError("24:00:00 must have zero minutes/seconds")
    return Decimal(hour * 3600 + minute * 60 + second) + fraction


def _parse_date_fields(walker: _TokenWalker) -> int:
    """Parse ``'-'? YYYY-MM-DD``; days since the Unix epoch."""
    negative = walker.take("dash")
    year, _ = walker.digits(4)
    if negative:
        year = -year
    if not walker.take("dash"):
        raise ValueError("expected '-' after year")
    month, _ = walker.digits(2)
    if not walker.take("dash"):
        raise ValueError("expected '-' after month")
    day, _ = walker.digits(2)
    if not 1 <= month <= 12:
        raise ValueError("month out of range")
    if not 1 <= day <= days_in_month(year, month):
        raise ValueError("day out of range")
    return days_from_civil(year, month, day)


def _cast_datetime(plugin: TypePlugin, tokens: Sequence[Token]) -> Decimal | None:
    walker = _TokenWalker(plugin, tokens)
    walker.skip_ws()
    try:
        days = _parse_date_fields(walker)
        if not walker.take("T"):
            raise ValueError("expected 'T'")
        seconds = _parse_time_of_day(walker)
        offset = _timezone_minutes(walker)
    except (ValueError, IndexError):
        return None
    if offset is None:
        offset = 0  # implicit UTC for untimezoned values
    return Decimal(days * 86400) + seconds - Decimal(offset * 60)


def _cast_date(plugin: TypePlugin, tokens: Sequence[Token]) -> Decimal | None:
    walker = _TokenWalker(plugin, tokens)
    walker.skip_ws()
    try:
        days = _parse_date_fields(walker)
        offset = _timezone_minutes(walker)
    except (ValueError, IndexError):
        return None
    if offset is None:
        offset = 0
    return Decimal(days * 86400) - Decimal(offset * 60)


def _cast_time(plugin: TypePlugin, tokens: Sequence[Token]) -> Decimal | None:
    walker = _TokenWalker(plugin, tokens)
    walker.skip_ws()
    try:
        seconds = _parse_time_of_day(walker)
        offset = _timezone_minutes(walker)
    except (ValueError, IndexError):
        return None
    if offset is None:
        offset = 0
    return seconds - Decimal(offset * 60)


def make_datetime_plugin() -> TypePlugin:
    # dateTime counts digits positionally, so its transition monoid is
    # larger than a numeric type's: the state costs 2 bytes instead of
    # the paper's 1 (accounted for in the storage model).
    return TypePlugin(
        name="dateTime",
        dfa=DATETIME_SPEC.compile(),
        cast=_cast_datetime,
        run_classes=("digit",),
        collapse_classes=("ws",),
        spellings={"ws": " "},
        max_elements=4096,
    )


def make_date_plugin() -> TypePlugin:
    return TypePlugin(
        name="date",
        dfa=DATE_SPEC.compile(),
        cast=_cast_date,
        run_classes=("digit",),
        collapse_classes=("ws",),
        spellings={"ws": " "},
    )


def make_time_plugin() -> TypePlugin:
    return TypePlugin(
        name="time",
        dfa=TIME_SPEC.compile(),
        cast=_cast_time,
        run_classes=("digit",),
        collapse_classes=("ws",),
        spellings={"ws": " "},
    )
