"""Gregorian partial-date machines: gYear, gYearMonth, gMonth, gDay,
gMonthDay.

These XSD types index recurring/partial dates (``2008``, ``2008-12``,
``--12-25``).  They complete the demonstration that the FSM/SCT recipe
covers the whole family of ordered XML Schema built-ins: each is a
dozen-line DFA plus a cast.

Values map to integers with natural within-type ordering (years,
months-since-year-0, month/day codes); the optional timezone suffix is
accepted lexically and ignored for ordering (these types recur, so a
total order across zones is already a convention, as with duration).
"""

from __future__ import annotations

from typing import Sequence

from .fragment import Token, TypePlugin
from .machine import DfaSpec
from .temporal import _CLASSES, _tz_suffix

__all__ = [
    "make_gyear_plugin",
    "make_gyearmonth_plugin",
    "make_gmonth_plugin",
    "make_gday_plugin",
    "make_gmonthday_plugin",
]


def _spec(name: str, digit_groups: list[int], leading_dashes: int) -> DfaSpec:
    """Build ``(-)*DD(-DD)*`` shaped specs with the shared tz suffix.

    ``digit_groups`` lists the digit counts per group; groups after the
    first are separated by a dash; ``leading_dashes`` prefixes (for the
    ``--MM`` family).  gYear additionally allows a negative sign, which
    callers encode as one extra leading dash alternative.
    """
    states = ["start"]
    transitions: dict = {("start", "ws"): "start"}
    previous = "start"
    for i in range(leading_dashes):
        state = f"lead{i}"
        states.append(state)
        transitions[(previous, "dash")] = state
        previous = state
    final_states: list[str] = []
    for group, count in enumerate(digit_groups):
        if group > 0:
            separator = f"sep{group}"
            states.append(separator)
            transitions[(previous, "dash")] = separator
            previous = separator
        for digit in range(count):
            state = f"g{group}d{digit}"
            states.append(state)
            transitions[(previous, "digit")] = state
            previous = state
        final_states.append(previous)
    last = final_states[-1]
    _tz_suffix(transitions, states, [last])
    return DfaSpec(
        name=name,
        states=states,
        initial="start",
        finals={last, "tzz", "tzm2", "wsend"},
        classes=_CLASSES,
        transitions=transitions,
    )


def _digit_runs(plugin: TypePlugin, tokens: Sequence[Token]) -> list[int]:
    digit = plugin.dfa.class_names.index("digit")
    runs = [payload for cid, payload, _l in tokens if cid == digit]
    return runs


def _make_cast(expected_groups: int, validate):
    def cast(plugin: TypePlugin, tokens: Sequence[Token]):
        runs = _digit_runs(plugin, tokens)
        # Timezone hh/mm digit runs may follow the date groups.
        values = runs[:expected_groups]
        if len(values) < expected_groups:
            return None  # pragma: no cover - DFA prevents this
        return validate(values)

    return cast


def _gyear_value(values):
    return values[0]


def _gyearmonth_value(values):
    year, month = values
    if not 1 <= month <= 12:
        return None
    return year * 12 + (month - 1)


def _gmonth_value(values):
    month = values[0]
    return month if 1 <= month <= 12 else None


def _gday_value(values):
    day = values[0]
    return day if 1 <= day <= 31 else None


def _gmonthday_value(values):
    month, day = values
    if not 1 <= month <= 12 or not 1 <= day <= 31:
        return None
    return month * 100 + day


def _plugin(name: str, spec: DfaSpec, cast) -> TypePlugin:
    return TypePlugin(
        name=name,
        dfa=spec.compile(),
        cast=cast,
        run_classes=("digit",),
        collapse_classes=("ws",),
        spellings={"ws": " "},
        max_elements=1024,
    )


def make_gyear_plugin() -> TypePlugin:
    return _plugin(
        "gYear", _spec("gYear", [4], 0), _make_cast(1, _gyear_value)
    )


def make_gyearmonth_plugin() -> TypePlugin:
    return _plugin(
        "gYearMonth",
        _spec("gYearMonth", [4, 2], 0),
        _make_cast(2, _gyearmonth_value),
    )


def make_gmonth_plugin() -> TypePlugin:
    return _plugin(
        "gMonth", _spec("gMonth", [2], 2), _make_cast(1, _gmonth_value)
    )


def make_gday_plugin() -> TypePlugin:
    return _plugin(
        "gDay", _spec("gDay", [2], 3), _make_cast(1, _gday_value)
    )


def make_gmonthday_plugin() -> TypePlugin:
    return _plugin(
        "gMonthDay",
        _spec("gMonthDay", [2, 2], 2),
        _make_cast(2, _gmonthday_value),
    )
