"""``xs:duration`` lexical machine (``-P1Y2M3DT4H5M6.7S``).

A qualitatively different lexical space from the numeric and temporal
types: unit-tagged components with ordering constraints (Y before M
before D; after ``T``, H before M before S), which makes the monoid
construction work harder and is therefore a good stress of the
generic framework.

Ordering note: XML Schema's ``xs:duration`` is only *partially*
ordered (``P1M`` vs ``P30D`` is indeterminate).  To serve a range
index, the cast maps a duration onto seconds with the average
Gregorian month (2,629,746 s, as in XQuery's implementation-defined
total order); the exactly-ordered XQuery subtypes correspond to
durations using only year/month or only day/time components.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Sequence

from .fragment import Token, TypePlugin
from .machine import DfaSpec

__all__ = ["DURATION_SPEC", "make_duration_plugin"]

#: Average Gregorian month in seconds (400-year cycle / 4800 months).
SECONDS_PER_MONTH = 2_629_746

_CLASSES = {
    "ws": " \t\n\r",
    "digit": "0123456789",
    "dash": "-",
    "P": "P",
    "Y": "Y",
    "M": "M",
    "D": "D",
    "T": "T",
    "H": "H",
    "S": "S",
    "dot": ".",
}

DURATION_SPEC = DfaSpec(
    name="duration",
    states=[
        "start", "sgn", "p0",
        "n1", "y", "n2", "mo", "n3", "d",  # date components
        "t0", "tn1", "h", "tn2", "mi", "tn3",  # time components
        "tfrac0", "tfrac", "s",
        "wsend",
    ],
    initial="start",
    finals={"y", "mo", "d", "h", "mi", "s", "wsend"},
    classes=_CLASSES,
    transitions={
        ("start", "ws"): "start",
        ("start", "dash"): "sgn",
        ("start", "P"): "p0",
        ("sgn", "P"): "p0",
        # Date part: digits then a unit; units must appear in Y, M, D order.
        ("p0", "digit"): "n1",
        ("p0", "T"): "t0",
        ("n1", "digit"): "n1",
        ("n1", "Y"): "y",
        ("n1", "M"): "mo",
        ("n1", "D"): "d",
        ("y", "digit"): "n2",
        ("y", "T"): "t0",
        ("y", "ws"): "wsend",
        ("n2", "digit"): "n2",
        ("n2", "M"): "mo",
        ("n2", "D"): "d",
        ("mo", "digit"): "n3",
        ("mo", "T"): "t0",
        ("mo", "ws"): "wsend",
        ("n3", "digit"): "n3",
        ("n3", "D"): "d",
        ("d", "T"): "t0",
        ("d", "ws"): "wsend",
        # Time part: digits then H, M, S in order; fraction before S.
        ("t0", "digit"): "tn1",
        ("tn1", "digit"): "tn1",
        ("tn1", "H"): "h",
        ("tn1", "M"): "mi",
        ("tn1", "S"): "s",
        ("tn1", "dot"): "tfrac0",
        ("h", "digit"): "tn2",
        ("h", "ws"): "wsend",
        ("tn2", "digit"): "tn2",
        ("tn2", "M"): "mi",
        ("tn2", "S"): "s",
        ("tn2", "dot"): "tfrac0",
        ("mi", "digit"): "tn3",
        ("mi", "ws"): "wsend",
        ("tn3", "digit"): "tn3",
        ("tn3", "S"): "s",
        ("tn3", "dot"): "tfrac0",
        ("tfrac0", "digit"): "tfrac",
        ("tfrac", "digit"): "tfrac",
        ("tfrac", "S"): "s",
        ("s", "ws"): "wsend",
        ("wsend", "ws"): "wsend",
    },
)

_UNIT_SECONDS = {
    "Y": 12 * SECONDS_PER_MONTH,
    "M": SECONDS_PER_MONTH,  # in the date part
    "D": 86400,
    "H": 3600,
    "S": 1,
}


def _cast_duration(plugin: TypePlugin, tokens: Sequence[Token]) -> Decimal | None:
    class_names = plugin.dfa.class_names
    total = Decimal(0)
    sign = 1
    in_time_part = False
    pending: Decimal | None = None
    for cid, payload, length in tokens:
        cls = class_names[cid]
        if cls == "ws" or cls == "P":
            continue
        if cls == "dash":
            sign = -1
        elif cls == "T":
            in_time_part = True
        elif cls == "digit":
            if pending is None:
                pending = Decimal(payload)
            else:
                # Digits after a '.': a fraction of the pending seconds.
                pending += Decimal(payload) / (Decimal(10) ** length)
        elif cls == "dot":
            if pending is None:
                return None  # pragma: no cover - DFA prevents this
        else:
            if pending is None:
                return None  # pragma: no cover - DFA prevents this
            if cls == "M" and in_time_part:
                total += pending * 60
            else:
                total += pending * _UNIT_SECONDS[cls]
            pending = None
    return sign * total


def make_duration_plugin() -> TypePlugin:
    return TypePlugin(
        name="duration",
        dfa=DURATION_SPEC.compile(),
        cast=_cast_duration,
        run_classes=("digit",),
        collapse_classes=("ws",),
        spellings={"ws": " "},
        max_elements=4096,
    )
