"""Custom typed indices from regular expressions.

The paper's recipe needs only a DFA per type; everything else (the
normalised FSM/SCT, fragments, maintenance) is generic.  This module
closes the loop for *users*: compile a regular expression into a DFA
(Thompson construction, then subset construction, over an alphabet
partitioned into character classes) and wrap it in a
:class:`~repro.core.fsm.fragment.TypePlugin` — a custom updatable
range index for product codes, ISBNs, emails, whatever the pattern
describes.

Supported syntax: literals, ``[...]`` classes (ranges, negation),
``.``, ``\\d \\w \\s``, ``* + ?``, ``|``, ``(...)`` groups and escaped
metacharacters.  Patterns anchor implicitly (whole-value match, like
``re.fullmatch``), and the alphabet is printable ASCII plus whitespace.
By default the typed value of a match is its exact text (ordered
lexicographically); pass ``cast`` for a custom value.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .fragment import Token, TypePlugin
from .machine import DEAD, Dfa

__all__ = ["PatternError", "pattern_plugin", "compile_pattern"]

#: The alphabet pattern machines operate over.
ALPHABET = frozenset(string.printable)

_DIGITS = frozenset("0123456789")
_WORD = frozenset(string.ascii_letters + string.digits + "_")
_SPACE = frozenset(" \t\n\r\x0b\x0c")


class PatternError(ValueError):
    """Raised on unsupported or malformed pattern syntax."""


# ---------------------------------------------------------------------------
# Pattern AST and parser
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Lit:
    chars: frozenset[str]


@dataclass(frozen=True)
class _Concat:
    parts: tuple


@dataclass(frozen=True)
class _Alt:
    options: tuple


@dataclass(frozen=True)
class _Repeat:
    inner: object
    kind: str  # * + ?


class _PatternParser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    def error(self, message: str) -> PatternError:
        return PatternError(
            f"{message} at position {self.pos} in {self.pattern!r}"
        )

    def peek(self) -> str | None:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def parse(self):
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self.error("unexpected trailing input")
        return node

    def _alternation(self):
        options = [self._concat()]
        while self.peek() == "|":
            self.pos += 1
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return _Alt(tuple(options))

    def _concat(self):
        parts = []
        while True:
            ch = self.peek()
            if ch is None or ch in "|)":
                break
            parts.append(self._repeat())
        return _Concat(tuple(parts))

    def _repeat(self):
        atom = self._atom()
        while True:
            ch = self.peek()
            if ch in ("*", "+", "?"):
                self.pos += 1
                atom = _Repeat(atom, ch)
            elif ch == "{":
                atom = self._bounded(atom)
            else:
                return atom

    def _bounded(self, atom):
        """Desugar ``{m}``/``{m,n}``/``{m,}`` into concat/optional/star."""
        close = self.pattern.find("}", self.pos)
        if close == -1:
            raise self.error("unterminated '{'")
        body = self.pattern[self.pos + 1 : close]
        low_text, comma, high_text = body.partition(",")
        try:
            low = int(low_text)
            if not comma:
                high: int | None = low
            elif high_text:
                high = int(high_text)
            else:
                high = None
        except ValueError:
            raise self.error(f"bad repetition {{{body}}}")
        if high is not None and high < low:
            raise self.error(f"bad repetition {{{body}}}")
        self.pos = close + 1
        parts = [atom] * low
        if high is None:
            parts.append(_Repeat(atom, "*"))
        else:
            parts.extend(_Repeat(atom, "?") for _ in range(high - low))
        return _Concat(tuple(parts))

    def _atom(self):
        ch = self.peek()
        if ch == "(":
            self.pos += 1
            inner = self._alternation()
            if self.peek() != ")":
                raise self.error("unbalanced '('")
            self.pos += 1
            return inner
        if ch == "[":
            return _Lit(self._char_class())
        if ch == ".":
            self.pos += 1
            return _Lit(ALPHABET)
        if ch == "\\":
            return _Lit(self._escape())
        if ch in "*+?)|":
            raise self.error(f"misplaced {ch!r}")
        self.pos += 1
        return _Lit(frozenset(ch))

    def _escape(self) -> frozenset[str]:
        self.pos += 1  # the backslash
        ch = self.peek()
        if ch is None:
            raise self.error("dangling escape")
        self.pos += 1
        if ch == "d":
            return _DIGITS
        if ch == "w":
            return _WORD
        if ch == "s":
            return _SPACE
        if ch in "DWS":
            raise self.error(f"negated class \\{ch} is not supported")
        return frozenset(ch)

    def _char_class(self) -> frozenset[str]:
        self.pos += 1  # the '['
        negate = False
        if self.peek() == "^":
            negate = True
            self.pos += 1
        members: set[str] = set()
        first = True
        while True:
            ch = self.peek()
            if ch is None:
                raise self.error("unterminated character class")
            if ch == "]" and not first:
                self.pos += 1
                break
            first = False
            if ch == "\\":
                members |= self._escape()
                continue
            self.pos += 1
            if (
                self.peek() == "-"
                and self.pos + 1 < len(self.pattern)
                and self.pattern[self.pos + 1] != "]"
            ):
                self.pos += 1
                high = self.pattern[self.pos]
                self.pos += 1
                if ord(high) < ord(ch):
                    raise self.error(f"bad range {ch}-{high}")
                members |= {chr(c) for c in range(ord(ch), ord(high) + 1)}
            else:
                members.add(ch)
        if negate:
            return frozenset(ALPHABET - members)
        return frozenset(members)


# ---------------------------------------------------------------------------
# Thompson NFA and subset construction
# ---------------------------------------------------------------------------


@dataclass
class _Nfa:
    """Fragment with one start and one accept state."""

    start: int
    accept: int
    # state -> [(charset | None for epsilon, target)]
    edges: dict[int, list] = field(default_factory=dict)


class _NfaBuilder:
    def __init__(self):
        self.counter = 0
        self.edges: dict[int, list] = {}

    def state(self) -> int:
        self.counter += 1
        return self.counter

    def edge(self, src: int, label, dst: int) -> None:
        self.edges.setdefault(src, []).append((label, dst))

    def build(self, node) -> tuple[int, int]:
        if isinstance(node, _Lit):
            start, accept = self.state(), self.state()
            self.edge(start, node.chars, accept)
            return start, accept
        if isinstance(node, _Concat):
            start = current = self.state()
            for part in node.parts:
                sub_start, sub_accept = self.build(part)
                self.edge(current, None, sub_start)
                current = sub_accept
            accept = self.state()
            self.edge(current, None, accept)
            return start, accept
        if isinstance(node, _Alt):
            start, accept = self.state(), self.state()
            for option in node.options:
                sub_start, sub_accept = self.build(option)
                self.edge(start, None, sub_start)
                self.edge(sub_accept, None, accept)
            return start, accept
        if isinstance(node, _Repeat):
            sub_start, sub_accept = self.build(node.inner)
            start, accept = self.state(), self.state()
            self.edge(start, None, sub_start)
            if node.kind in "*?":
                self.edge(start, None, accept)
            self.edge(sub_accept, None, accept)
            if node.kind in "*+":
                self.edge(sub_accept, None, sub_start)
            return start, accept
        raise PatternError(f"unknown AST node {node!r}")  # pragma: no cover


def _partition_alphabet(node, atoms: list[frozenset[str]]) -> None:
    """Collect every charset the pattern mentions."""
    if isinstance(node, _Lit):
        atoms.append(node.chars)
    elif isinstance(node, _Concat):
        for part in node.parts:
            _partition_alphabet(part, atoms)
    elif isinstance(node, _Alt):
        for option in node.options:
            _partition_alphabet(option, atoms)
    elif isinstance(node, _Repeat):
        _partition_alphabet(node.inner, atoms)


def compile_pattern(name: str, pattern: str) -> Dfa:
    """Compile a regular expression into a minimized DFA."""
    ast = _PatternParser(pattern).parse()
    builder = _NfaBuilder()
    nfa_start, nfa_accept = builder.build(ast)

    # Partition the alphabet into classes: two characters share a class
    # iff they belong to exactly the same charsets of the pattern.
    charsets: list[frozenset[str]] = []
    _partition_alphabet(ast, charsets)
    signature_of: dict[str, tuple] = {}
    for ch in sorted(ALPHABET):
        signature_of[ch] = tuple(ch in cs for cs in charsets)
    classes: dict[tuple, list[str]] = {}
    for ch, signature in signature_of.items():
        if any(signature):
            classes.setdefault(signature, []).append(ch)
    class_list = sorted(classes.values())
    char_class = {
        ch: cid for cid, chars in enumerate(class_list) for ch in chars
    }
    class_names = [
        f"c{cid}:{chars[0]}" for cid, chars in enumerate(class_list)
    ]

    def eps_closure(states: frozenset[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for label, target in builder.edges.get(state, ()):
                if label is None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    start_set = eps_closure(frozenset([nfa_start]))
    dfa_states: dict[frozenset[int], int] = {start_set: 1}
    table_rows: dict[int, list[int]] = {}
    finals: set[int] = set()
    frontier = [start_set]
    while frontier:
        current = frontier.pop()
        current_id = dfa_states[current]
        if nfa_accept in current:
            finals.add(current_id)
        row = [DEAD] * len(class_list)
        for cid, chars in enumerate(class_list):
            probe = chars[0]
            targets = set()
            for state in current:
                for label, target in builder.edges.get(state, ()):
                    if label is not None and probe in label:
                        targets.add(target)
            if targets:
                closure = eps_closure(frozenset(targets))
                if closure not in dfa_states:
                    dfa_states[closure] = len(dfa_states) + 1
                    frontier.append(closure)
                row[cid] = dfa_states[closure]
        table_rows[current_id] = row

    n_states = len(dfa_states) + 1
    table = [[DEAD] * len(class_list) for _ in range(n_states)]
    for state_id, row in table_rows.items():
        table[state_id] = row
    dfa = Dfa(
        name=name,
        state_names=["<dead>"] + [f"q{i}" for i in range(1, n_states)],
        class_names=class_names,
        char_class=char_class,
        initial=1,
        finals=frozenset(finals),
        table=tuple(tuple(row) for row in table),
    )
    return dfa.minimize()


def _default_cast(plugin: TypePlugin, tokens: Sequence[Token]) -> str:
    return plugin.render(tokens)


def pattern_plugin(
    name: str,
    pattern: str,
    cast: Callable[[TypePlugin, Sequence[Token]], object] | None = None,
    max_elements: int = 4096,
) -> TypePlugin:
    """Build a :class:`TypePlugin` whose lexical space is ``pattern``.

    Register it with :func:`repro.core.fsm.register_type` to get a
    fully updatable typed range index over the pattern's matches::

        register_type("isbn", lambda: pattern_plugin(
            "isbn", r"97[89]-\\d-\\d\\d\\d\\d\\d-\\d\\d\\d-\\d"))
        manager = IndexManager(typed=("isbn",))
    """
    dfa = compile_pattern(name, pattern)
    # Decimal-digit classes may compress into runs (value, length pairs
    # reconstruct exactly); every other multi-char class keeps its
    # concrete character as payload so values render losslessly.
    chars_by_class: dict[int, set[str]] = {}
    for ch, cid in dfa.char_class.items():
        chars_by_class.setdefault(cid, set()).add(ch)
    run_classes = []
    char_classes = []
    for cid, chars in chars_by_class.items():
        if chars == set("0123456789"):
            run_classes.append(dfa.class_names[cid])
        elif len(chars) > 1:
            char_classes.append(dfa.class_names[cid])
    return TypePlugin(
        name=name,
        dfa=dfa,
        cast=cast or _default_cast,
        run_classes=tuple(run_classes),
        char_classes=tuple(char_classes),
        max_elements=max_elements,
    )
