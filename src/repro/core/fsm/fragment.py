"""Fragments: the typed-index per-node payload and its combination.

A *fragment* is what the typed range index stores for one XML node: the
node's monoid state (the paper's one-byte state) plus a compact token
payload from which the typed value of any *combination* of fragments
can be computed without re-reading document text.  This plays the role
of the paper's ``[value, state]`` pair — "the indexed tuples are used
during creation or update of the typed XML indices to reconstruct the
lexical representation of a specific node, without accessing the
document data" — but is lossless: digit runs are stored as
``(value, length)`` integer pairs, so ``".0" + "5"`` and ``".05"``
combine exactly even though a bare double value could not represent
them.

Tokens are triples ``(class_id, payload, length)``:

* *run* classes (digits) store the run as ``payload = int(run)`` with
  its ``length`` (preserving leading zeros);
* *collapse* classes (whitespace) store a single collapsed token, which
  is sound because their generator is idempotent in the monoid (checked
  at plugin construction);
* *char* classes (signs) store the concrete character as payload;
* other classes (dot, exponent marker, date separators ...) have a
  fixed spelling per class and carry no payload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .machine import Dfa
from .monoid import REJECT, TransitionMonoid

__all__ = ["Token", "Fragment", "REJECT_FRAGMENT", "TypePlugin"]

Token = tuple[int, object, int]


@dataclass(frozen=True)
class Fragment:
    """A node's typed-index entry: monoid state + token payload.

    ``tokens`` is ``None`` exactly when ``state == REJECT`` — rejected
    nodes store nothing (the paper's storage argument).
    """

    state: int
    tokens: tuple[Token, ...] | None

    @property
    def is_rejected(self) -> bool:
        return self.state == REJECT


REJECT_FRAGMENT = Fragment(REJECT, None)


class TypePlugin:
    """Everything the typed index needs for one XML type.

    Args:
        name: XML Schema type name (``"double"``, ``"dateTime"`` ...).
        dfa: Compiled lexical DFA of the type.
        cast: ``cast(plugin, tokens) -> value | None`` — compute the
            comparable typed value of a castable fragment; ``None`` for
            fragments that pass the DFA but fail semantic checks (e.g.
            month 13 in a dateTime).
        run_classes: Names of digit-run classes.
        collapse_classes: Names of whitespace-like classes whose runs
            collapse to one token (their generators must be idempotent).
        char_classes: Names of classes whose concrete character matters
            (signs).
        spellings: Canonical spelling per remaining class, used by
            :meth:`render`; defaults to the class's first character.
    """

    def __init__(
        self,
        name: str,
        dfa: Dfa,
        cast: Callable[["TypePlugin", Sequence[Token]], object],
        run_classes: Iterable[str] = (),
        collapse_classes: Iterable[str] = (),
        char_classes: Iterable[str] = (),
        spellings: dict[str, str] | None = None,
        max_elements: int = 255,
    ):
        self.name = name
        # Minimise first: fewer DFA states -> smaller monoid and SCT.
        self.dfa = dfa.minimize()
        self.monoid = TransitionMonoid(self.dfa, max_elements=max_elements)
        self._cast = cast
        class_ids = {cls: i for i, cls in enumerate(dfa.class_names)}
        self.run_class_ids = frozenset(class_ids[c] for c in run_classes)
        self.collapse_class_ids = frozenset(class_ids[c] for c in collapse_classes)
        self.char_class_ids = frozenset(class_ids[c] for c in char_classes)
        for cid in self.collapse_class_ids:
            gen = self.monoid.generator(cid)
            if not self.monoid.is_idempotent(gen):
                raise ValueError(
                    f"{name}: class {dfa.class_names[cid]!r} cannot collapse "
                    "(its generator is not idempotent)"
                )
        # Canonical spelling for classes with no payload.
        chars_by_class: dict[int, list[str]] = {}
        for ch, cid in sorted(dfa.char_class.items()):
            chars_by_class.setdefault(cid, []).append(ch)
        self._spelling = {}
        for cid, chars in chars_by_class.items():
            cls = dfa.class_names[cid]
            if spellings and cls in spellings:
                self._spelling[cid] = spellings[cls]
            else:
                self._spelling[cid] = chars[0]
        # Fast pre-filter: any character outside the alphabet rejects
        # the whole fragment (the paper: "the majority of all text nodes
        # ... will be rejected immediately").
        alphabet = "".join(sorted(dfa.char_class))
        self._illegal_re = re.compile(f"[^{re.escape(alphabet)}]")
        # Token scanner: one alternative per class, run/collapse classes
        # match greedily.
        parts = []
        for cid, chars in sorted(chars_by_class.items()):
            body = "".join(re.escape(c) for c in chars)
            multi = "+" if cid in self.run_class_ids | self.collapse_class_ids else ""
            parts.append(f"(?P<c{cid}>[{body}]{multi})")
        self._token_re = re.compile("|".join(parts))
        #: The fragment of the empty string (identity of combination).
        self.empty_fragment = Fragment(self.monoid.identity, ())

    # ------------------------------------------------------------------
    # Tokenisation and state computation
    # ------------------------------------------------------------------

    def tokenize(self, text: str) -> tuple[Token, ...] | None:
        """Split legal text into tokens; ``None`` on any illegal char."""
        if self._illegal_re.search(text):
            return None
        tokens: list[Token] = []
        for match in self._token_re.finditer(text):
            cid = int(match.lastgroup[1:])  # group names are c<id>
            run = match.group()
            if cid in self.run_class_ids:
                tokens.append((cid, int(run), len(run)))
            elif cid in self.collapse_class_ids:
                tokens.append((cid, None, 1))
            elif cid in self.char_class_ids:
                tokens.append((cid, run, 1))
            else:
                tokens.append((cid, None, 1))
        return tuple(tokens)

    def state_of_tokens(self, tokens: Sequence[Token]) -> int:
        """Monoid element induced by a token sequence."""
        monoid = self.monoid
        state = monoid.identity
        table = monoid.table
        for cid, _payload, length in tokens:
            if length > 1:
                element = monoid.class_run(cid, length)
            else:
                element = monoid.generator_ids[cid]
            state = table[state][element]
            if state == REJECT:
                return REJECT
        return state

    def fragment_of_text(self, text: str) -> Fragment:
        """Run the FSM over a text node's value (paper Figure 7 line 7).

        Returns :data:`REJECT_FRAGMENT` for values that are not
        potential valid lexical representations; useless states (no
        completion can ever accept) are folded into rejection, which is
        the paper's early-reject optimisation.
        """
        tokens = self.tokenize(text)
        if tokens is None:
            return REJECT_FRAGMENT
        state = self.state_of_tokens(tokens)
        if state == REJECT or not self.monoid.useful[state]:
            return REJECT_FRAGMENT
        return Fragment(state, tokens)

    # ------------------------------------------------------------------
    # Combination (the SCT step) and casting
    # ------------------------------------------------------------------

    def combine(self, left: Fragment, right: Fragment) -> Fragment:
        """Combine adjacent fragments: SCT probe + token merge."""
        if left.state == REJECT or right.state == REJECT:
            return REJECT_FRAGMENT
        state = self.monoid.table[left.state][right.state]
        if state == REJECT or not self.monoid.useful[state]:
            return REJECT_FRAGMENT
        return Fragment(state, self._merge(left.tokens, right.tokens))

    def combine_all(self, fragments: Iterable[Fragment]) -> Fragment:
        """Fold :meth:`combine` left to right; empty input ⇒ empty fragment."""
        result = self.empty_fragment
        for fragment in fragments:
            if fragment.state == REJECT:
                return REJECT_FRAGMENT
            result = self.combine(result, fragment)
            if result.state == REJECT:
                return REJECT_FRAGMENT
        return result

    def _merge(
        self, left: tuple[Token, ...], right: tuple[Token, ...]
    ) -> tuple[Token, ...]:
        if not left:
            return right
        if not right:
            return left
        l_cid, l_payload, l_len = left[-1]
        r_cid, r_payload, r_len = right[0]
        if l_cid != r_cid:
            return left + right
        if l_cid in self.run_class_ids:
            merged = (l_cid, l_payload * 10 ** r_len + r_payload, l_len + r_len)
            return left[:-1] + (merged,) + right[1:]
        if l_cid in self.collapse_class_ids:
            return left + right[1:]
        return left + right

    def is_castable(self, fragment: Fragment) -> bool:
        """True iff the fragment alone is a complete lexical value."""
        return self.monoid.castable[fragment.state]

    def cast(self, fragment: Fragment) -> object:
        """Typed value of a castable fragment; ``None`` if not castable
        or semantically invalid."""
        if fragment.tokens is None or not self.monoid.castable[fragment.state]:
            return None
        return self._cast(self, fragment.tokens)

    def value_of_text(self, text: str) -> object:
        """Convenience: tokenize, check and cast in one call."""
        return self.cast(self.fragment_of_text(text))

    # ------------------------------------------------------------------
    # Rendering (lexical reconstruction)
    # ------------------------------------------------------------------

    def render(self, tokens: Sequence[Token]) -> str:
        """Reconstruct a canonical lexical spelling of a fragment.

        This realises the paper's example of deriving ``"26E+"`` from
        value 26 and state s7 — except our payload keeps digit-run
        lengths, so leading zeros survive.
        """
        parts = []
        for cid, payload, length in tokens:
            if cid in self.run_class_ids:
                parts.append(str(payload).rjust(length, "0"))
            elif cid in self.char_class_ids:
                parts.append(payload)
            else:
                parts.append(self._spelling[cid])
        return "".join(parts)

    def byte_size_of(self, fragment: Fragment) -> int:
        """Modelled storage footprint of a stored fragment (bytes).

        One byte for the state (the paper's claim; two if the monoid
        outgrew a byte) plus the token payload: 1 byte per marker token
        and ``ceil(digits/2)`` bytes per digit run (BCD-style), matching
        the "no string replication" accounting used in the storage
        experiment.
        """
        if fragment.state == REJECT:
            return 0
        size = 1 if len(self.monoid) <= 256 else 2
        for cid, _payload, length in fragment.tokens:
            if cid in self.run_class_ids:
                size += (length + 1) // 2
            else:
                size += 1
        return size
