"""``xs:boolean`` lexical machine (``true``/``false``/``1``/``0``).

Included to show the technique handles word-shaped lexical spaces:
every letter is its own character class, and the monoid/SCT machinery
is identical to the numeric types.  Booleans order ``false < true``.
"""

from __future__ import annotations

from typing import Sequence

from .fragment import Token, TypePlugin
from .machine import DfaSpec

__all__ = ["BOOLEAN_SPEC", "make_boolean_plugin"]

BOOLEAN_SPEC = DfaSpec(
    name="boolean",
    states=[
        "start",
        "t1", "t2", "t3", "true",  # t, tr, tru, true
        "f1", "f2", "f3", "f4", "false",  # f, fa, fal, fals, false
        "bit",  # 0 or 1
        "wsend",
    ],
    initial="start",
    finals={"true", "false", "bit", "wsend"},
    classes={
        "ws": " \t\n\r",
        "bit": "01",
        "t": "t",
        "r": "r",
        "u": "u",
        "e": "e",
        "f": "f",
        "a": "a",
        "l": "l",
        "s": "s",
    },
    transitions={
        ("start", "ws"): "start",
        ("start", "bit"): "bit",
        ("start", "t"): "t1",
        ("t1", "r"): "t2",
        ("t2", "u"): "t3",
        ("t3", "e"): "true",
        ("start", "f"): "f1",
        ("f1", "a"): "f2",
        ("f2", "l"): "f3",
        ("f3", "s"): "f4",
        ("f4", "e"): "false",
        ("true", "ws"): "wsend",
        ("false", "ws"): "wsend",
        ("bit", "ws"): "wsend",
        ("wsend", "ws"): "wsend",
    },
)


def _cast_boolean(plugin: TypePlugin, tokens: Sequence[Token]) -> bool | None:
    text = plugin.render(tokens).strip()
    return {"true": True, "1": True, "false": False, "0": False}.get(text)


def make_boolean_plugin() -> TypePlugin:
    return TypePlugin(
        name="boolean",
        dfa=BOOLEAN_SPEC.compile(),
        cast=_cast_boolean,
        run_classes=("bit",),
        collapse_classes=("ws",),
        spellings={"ws": " "},
    )
