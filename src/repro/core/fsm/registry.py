"""Registry of the built-in type plugins.

Plugins are built lazily and cached: monoid construction is cheap but
not free, and every index over the same type can share one plugin.
"""

from __future__ import annotations

from typing import Callable

from .boolean import make_boolean_plugin
from .double import make_double_plugin
from .duration import make_duration_plugin
from .fragment import TypePlugin
from .gregorian import (
    make_gday_plugin,
    make_gmonth_plugin,
    make_gmonthday_plugin,
    make_gyear_plugin,
    make_gyearmonth_plugin,
)
from .numeric import make_decimal_plugin, make_integer_plugin
from .temporal import make_date_plugin, make_datetime_plugin, make_time_plugin

__all__ = ["get_plugin", "available_types", "register_type"]

_FACTORIES: dict[str, Callable[[], TypePlugin]] = {
    "double": make_double_plugin,
    "integer": make_integer_plugin,
    "decimal": make_decimal_plugin,
    "dateTime": make_datetime_plugin,
    "date": make_date_plugin,
    "time": make_time_plugin,
    "boolean": make_boolean_plugin,
    "duration": make_duration_plugin,
    "gYear": make_gyear_plugin,
    "gYearMonth": make_gyearmonth_plugin,
    "gMonth": make_gmonth_plugin,
    "gDay": make_gday_plugin,
    "gMonthDay": make_gmonthday_plugin,
}

_CACHE: dict[str, TypePlugin] = {}


def available_types() -> list[str]:
    """Names of all registered XML types."""
    return sorted(_FACTORIES)


def register_type(name: str, factory: Callable[[], TypePlugin]) -> None:
    """Register a custom type plugin factory (overrides any builtin)."""
    _FACTORIES[name] = factory
    _CACHE.pop(name, None)


def get_plugin(name: str) -> TypePlugin:
    """Return the (cached) plugin for ``name``.

    Raises ``KeyError`` with the list of known types on a bad name.
    """
    plugin = _CACHE.get(name)
    if plugin is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise KeyError(
                f"unknown XML type {name!r}; available: {available_types()}"
            )
        plugin = factory()
        _CACHE[name] = plugin
    return plugin
