"""Deterministic finite automata over character classes.

The typed range indices of the paper (Section 4) are driven by a finite
state machine per XML type that recognises the type's lexical space.
This module provides the declarative DFA description those machines are
written in, and compiles it into dense transition tables.

A :class:`DfaSpec` names its states and groups the input alphabet into
*character classes* (all digits behave identically, ``e`` and ``E``
behave identically, ...).  Characters outside every class send the
machine to the implicit dead state, which is how the paper's FSM
"return[s] a reject state if an illegal sequence of characters is
encountered".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["DfaSpec", "Dfa", "DEAD"]

#: Compiled id of the dead (reject) state.  Always state 0.
DEAD = 0


@dataclass(frozen=True)
class DfaSpec:
    """Declarative description of a typed-value DFA.

    Attributes:
        name: Human-readable machine name (e.g. ``"double"``).
        states: State names; order is preserved in the compiled DFA
            (after the implicit dead state, which is always first).
        initial: Name of the initial state.
        finals: Names of accepting states (a value read from the initial
            state to a final state is *castable* to the type).
        classes: Mapping of class name to the characters it contains.
            Classes must be disjoint.
        transitions: ``(state, class) -> state`` edges.  Missing edges go
            to the dead state.
    """

    name: str
    states: Sequence[str]
    initial: str
    finals: frozenset[str] | set[str]
    classes: Mapping[str, str]
    transitions: Mapping[tuple[str, str], str] = field(default_factory=dict)

    def compile(self) -> "Dfa":
        """Validate the spec and build the dense :class:`Dfa`."""
        if self.initial not in self.states:
            raise ValueError(f"initial state {self.initial!r} not in states")
        unknown_finals = set(self.finals) - set(self.states)
        if unknown_finals:
            raise ValueError(f"unknown final states: {sorted(unknown_finals)}")
        seen_chars: dict[str, str] = {}
        for cls, chars in self.classes.items():
            for ch in chars:
                if ch in seen_chars:
                    raise ValueError(
                        f"character {ch!r} in classes {seen_chars[ch]!r} and {cls!r}"
                    )
                seen_chars[ch] = cls
        state_ids = {name: i + 1 for i, name in enumerate(self.states)}
        class_names = list(self.classes)
        class_ids = {name: i for i, name in enumerate(class_names)}
        n_states = len(self.states) + 1  # + dead
        n_classes = len(class_names)
        table = [[DEAD] * n_classes for _ in range(n_states)]
        for (src, cls), dst in self.transitions.items():
            if src not in state_ids:
                raise ValueError(f"transition from unknown state {src!r}")
            if dst not in state_ids:
                raise ValueError(f"transition to unknown state {dst!r}")
            if cls not in class_ids:
                raise ValueError(f"transition on unknown class {cls!r}")
            table[state_ids[src]][class_ids[cls]] = state_ids[dst]
        char_class = {ch: class_ids[cls] for ch, cls in seen_chars.items()}
        return Dfa(
            name=self.name,
            state_names=["<dead>"] + list(self.states),
            class_names=class_names,
            char_class=char_class,
            initial=state_ids[self.initial],
            finals=frozenset(state_ids[f] for f in self.finals),
            table=tuple(tuple(row) for row in table),
        )


@dataclass(frozen=True)
class Dfa:
    """A compiled DFA.  State 0 is the dead (reject) state."""

    name: str
    state_names: list[str]
    class_names: list[str]
    char_class: dict[str, int]
    initial: int
    finals: frozenset[int]
    table: tuple[tuple[int, ...], ...]

    @property
    def n_states(self) -> int:
        return len(self.table)

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def classify(self, char: str) -> int | None:
        """Return the class id of ``char``, or ``None`` if it is illegal."""
        return self.char_class.get(char)

    def step(self, state: int, char: str) -> int:
        """Advance one character; illegal characters go to ``DEAD``."""
        cls = self.char_class.get(char)
        if cls is None:
            return DEAD
        return self.table[state][cls]

    def run(self, text: str, state: int | None = None) -> int:
        """Run the machine over ``text`` from ``state`` (default initial)."""
        cur = self.initial if state is None else state
        table = self.table
        char_class = self.char_class
        for ch in text:
            cls = char_class.get(ch)
            if cls is None:
                return DEAD
            cur = table[cur][cls]
            if cur == DEAD:
                return DEAD
        return cur

    def accepts(self, text: str) -> bool:
        """True iff ``text`` is a complete lexical value of the type."""
        return self.run(text) in self.finals

    def reachable_states(self) -> frozenset[int]:
        """States reachable from the initial state (excluding dead)."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for nxt in self.table[state]:
                if nxt != DEAD and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def minimize(self) -> "Dfa":
        """Language-preserving state minimisation (Moore refinement).

        Equivalent states collapse into one; unreachable states vanish.
        A smaller DFA gives a smaller transition monoid and SCT, so the
        type plugins minimise their machines before building monoids.
        The dead state stays state 0.
        """
        reachable = sorted(self.reachable_states() | {DEAD})
        index_of = {state: i for i, state in enumerate(reachable)}
        n = len(reachable)
        # Initial partition: finals vs the rest (dead among the rest).
        block = [
            1 if state in self.finals else 0 for state in reachable
        ]
        while True:
            # Signature: own block + successor blocks per class.
            signatures: dict[tuple, int] = {}
            new_block = [0] * n
            for i, state in enumerate(reachable):
                successors = tuple(
                    block[index_of.get(self.table[state][cls], 0)]
                    for cls in range(self.n_classes)
                )
                signature = (block[i], successors)
                if signature not in signatures:
                    signatures[signature] = len(signatures)
                new_block[i] = signatures[signature]
            if new_block == block:
                break
            block = new_block
        # Renumber blocks so the dead state's block is 0.
        dead_block = block[index_of[DEAD]]
        order: list[int] = [dead_block]
        for b in block:
            if b not in order:
                order.append(b)
        renumber = {b: i for i, b in enumerate(order)}
        n_blocks = len(order)
        table = [[DEAD] * self.n_classes for _ in range(n_blocks)]
        names: list[str] = ["<dead>"] * n_blocks
        for i, state in enumerate(reachable):
            b = renumber[block[i]]
            if b != 0 and state != DEAD and names[b] == "<dead>":
                names[b] = self.state_names[state]
            for cls in range(self.n_classes):
                target = self.table[state][cls]
                table[b][cls] = renumber[block[index_of.get(target, 0)]]
        finals = frozenset(
            renumber[block[index_of[state]]]
            for state in self.finals
            if state in index_of
        )
        return Dfa(
            name=self.name,
            state_names=names,
            class_names=self.class_names,
            char_class=self.char_class,
            initial=renumber[block[index_of[self.initial]]],
            finals=finals,
            table=tuple(tuple(row) for row in table),
        )

    def coreachable_states(self) -> frozenset[int]:
        """States from which some final state is reachable (incl. finals)."""
        # Invert the transition relation, then walk back from the finals.
        inverse: dict[int, set[int]] = {}
        for src in range(self.n_states):
            for dst in self.table[src]:
                inverse.setdefault(dst, set()).add(src)
        seen = set(self.finals)
        frontier = list(self.finals)
        while frontier:
            state = frontier.pop()
            for prev in inverse.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    frontier.append(prev)
        seen.discard(DEAD)
        return frozenset(seen)
