"""Pattern-compiled presets for XSD string-flavoured types.

These types have regular lexical spaces, so their plugins come straight
from :func:`~repro.core.fsm.pattern.pattern_plugin` — each is one
pattern plus (optionally) whitespace framing.  Name-shaped types use
the ASCII subset of the XML name alphabet (documented deviation; the
full Unicode name classes would need per-codepoint classes).

Call :func:`register_presets` once to make them available to
``IndexManager(typed=(...))`` by name.
"""

from __future__ import annotations

from .pattern import pattern_plugin
from .registry import register_type

__all__ = ["PRESET_PATTERNS", "register_presets"]

_WS = r"\s*"

#: name -> fullmatch pattern for the type's lexical space.
PRESET_PATTERNS: dict[str, str] = {
    # RFC 3066-ish language tags: en, en-US, x-klingon-1.
    "language": _WS + r"[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*" + _WS,
    # Even-length hex strings (possibly empty).
    "hexBinary": _WS + r"([0-9a-fA-F][0-9a-fA-F])*" + _WS,
    # Name token: name characters, no structural restriction.
    "NMTOKEN": _WS + r"[a-zA-Z0-9._:\-]+" + _WS,
    # XML Name (ASCII subset): no leading digit/dot/dash.
    "Name": _WS + r"[a-zA-Z_:][a-zA-Z0-9._:\-]*" + _WS,
}


def _trimmed(plugin, tokens) -> str:
    """Default preset value: the matched text minus the ws framing."""
    return plugin.render(tokens).strip()


def _hex_value(plugin, tokens) -> str:
    """hexBinary values compare case-insensitively (byte semantics)."""
    return plugin.render(tokens).strip().upper()


_CASTS = {"hexBinary": _hex_value}


def register_presets() -> None:
    """Register all preset types (idempotent)."""
    for name, pattern in PRESET_PATTERNS.items():
        cast = _CASTS.get(name, _trimmed)
        register_type(
            name,
            lambda name=name, pattern=pattern, cast=cast: pattern_plugin(
                name, pattern, cast=cast
            ),
        )
