"""Transition monoids: the paper's "normalised FSM" and its SCT.

Section 4 of the paper normalises each type FSM "in such a way that
[paths] lead to different copies of the same state ... As a result,
there are 60 different states" for doubles, and then defines a *state
combination table* (SCT) with ``state(a·b) = SCT[state(a)][state(b)]``.

The canonical mathematical object behind that construction is the
**transition monoid** of the DFA: every string ``w`` induces a function
``f_w : Q -> Q`` (where ``f_w(q)`` is the state reached from ``q`` after
reading ``w``), and ``f_{ab} = f_b ∘ f_a``.  Function composition is
associative, so the multiplication table of the monoid *is* a correct
SCT by construction — for any type, not just doubles.  This module
builds that monoid from a compiled :class:`~repro.core.fsm.machine.Dfa`.

Element 0 is the *reject* element (the all-to-dead function): "the
absence of a state signifies the reject state".  Every element records:

* ``castable`` — reading the fragment from the DFA's initial state ends
  in a final state, i.e. the fragment on its own is a lexical value;
* ``useful`` — some left context can be extended through the fragment
  towards acceptance (the paper's "potential valid lexical
  representation"); non-useful fragments are rejected early.
"""

from __future__ import annotations

from .machine import DEAD, Dfa

__all__ = ["TransitionMonoid", "REJECT"]

#: Element id of the reject (dead) element.
REJECT = 0


class TransitionMonoid:
    """The transition monoid of a DFA, with its multiplication table.

    Args:
        dfa: The compiled type DFA.
        max_elements: Safety bound on the number of monoid elements; the
            paper stores a state in one byte (60 states for doubles), so
            machines are expected to stay small.  Construction raises
            ``ValueError`` if the bound is exceeded.
    """

    def __init__(self, dfa: Dfa, max_elements: int = 255):
        self.dfa = dfa
        n = dfa.n_states
        dead_fn = tuple([DEAD] * n)
        identity_fn = tuple(range(n))
        generators = []
        for cls in range(dfa.n_classes):
            generators.append(tuple(dfa.table[q][cls] for q in range(n)))

        # Close {identity} ∪ generators under composition.  Every product
        # of generators is reached by right-multiplying by one generator,
        # so a BFS over right-multiplication covers the whole monoid.
        elements: list[tuple[int, ...]] = [dead_fn, identity_fn]
        index: dict[tuple[int, ...], int] = {dead_fn: REJECT, identity_fn: 1}
        frontier = [identity_fn]
        while frontier:
            fn = frontier.pop()
            for gen in generators:
                product = tuple(gen[fn[q]] for q in range(n))
                if product not in index:
                    if len(elements) >= max_elements:
                        raise ValueError(
                            f"transition monoid of {dfa.name!r} exceeds "
                            f"{max_elements} elements; simplify the DFA"
                        )
                    index[product] = len(elements)
                    elements.append(product)
                    frontier.append(product)

        self.elements = elements
        self.identity = 1
        self._index = index
        self.generator_ids = [index[gen] for gen in generators]

        # Multiplication table (the SCT): table[a][b] = id of b∘a, i.e.
        # the element of the concatenation "fragment a then fragment b".
        size = len(elements)
        table = []
        for a_fn in elements:
            row = [0] * size
            for b_id, b_fn in enumerate(elements):
                product = tuple(b_fn[a_fn[q]] for q in range(n))
                row[b_id] = index[product]
            table.append(row)
        self.table = table

        reachable = dfa.reachable_states()
        coreachable = dfa.coreachable_states()
        self.castable = [fn[dfa.initial] in dfa.finals for fn in elements]
        self.useful = [
            any(fn[q] != DEAD and fn[q] in coreachable for q in reachable)
            for fn in elements
        ]
        # Cache for class-run powers: (class_id, length) -> element id.
        self._run_cache: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self.elements)

    def combine(self, left: int, right: int) -> int:
        """SCT probe: the state of the concatenation of two fragments."""
        return self.table[left][right]

    def combine_all(self, states) -> int:
        """Fold :meth:`combine` over ``states``; identity when empty."""
        result = self.identity
        table = self.table
        for state in states:
            result = table[result][state]
        return result

    def generator(self, class_id: int) -> int:
        """Element id of a single character of class ``class_id``."""
        return self.generator_ids[class_id]

    def class_run(self, class_id: int, length: int) -> int:
        """Element id of ``length`` repeated characters of one class.

        Run powers stabilise or cycle quickly (for digits, ``d·d = d^k``
        for all ``k >= 2`` in typical numeric machines), so results are
        memoised and long runs cost O(cycle) table probes.
        """
        if length <= 0:
            return self.identity
        key = (class_id, length)
        cached = self._run_cache.get(key)
        if cached is not None:
            return cached
        gen = self.generator_ids[class_id]
        # Walk powers gen^1, gen^2, ... recording the first repeat; the
        # power sequence is then eventually periodic.
        powers = [gen]
        seen_at = {gen: 0}
        current = gen
        while True:
            current = self.table[current][gen]
            if current in seen_at:
                start = seen_at[current]
                period = len(powers) - start
                break
            seen_at[current] = len(powers)
            powers.append(current)
        for i, power in enumerate(powers):
            self._run_cache[(class_id, i + 1)] = power
        if length <= len(powers):
            return powers[length - 1]
        result = powers[start + (length - 1 - start) % period]
        self._run_cache[key] = result
        return result

    def is_idempotent(self, element: int) -> bool:
        """True iff combining the element with itself is a no-op."""
        return self.table[element][element] == element

    def state_of_text(self, text: str) -> int:
        """Element id induced by ``text`` (character-by-character).

        This is the reference implementation; the tokenizer in
        :mod:`repro.core.fsm.fragment` computes the same element from
        token runs using :meth:`class_run`.
        """
        classify = self.dfa.classify
        table = self.table
        state = self.identity
        for ch in text:
            cls = classify(ch)
            if cls is None:
                return REJECT
            state = table[state][self.generator_ids[cls]]
            if state == REJECT:
                return REJECT
        return state

    def dfa_state_from_initial(self, element: int) -> int:
        """The DFA state reached from the initial state via the fragment."""
        return self.elements[element][self.dfa.initial]
