"""Proleptic Gregorian calendar arithmetic for the temporal machines.

Implemented from scratch (rata-die style) so the temporal typed indices
carry no dependency on ``datetime``'s year range: XML Schema permits
years outside 1..9999 and this module handles them.
"""

from __future__ import annotations

__all__ = ["is_leap_year", "days_in_month", "days_from_civil"]

_DAYS_BEFORE_MONTH = (0, 0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334)


def is_leap_year(year: int) -> bool:
    """Proleptic Gregorian leap-year rule."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_in_month(year: int, month: int) -> int:
    """Number of days in ``month`` of ``year`` (month in 1..12)."""
    if month == 2 and is_leap_year(year):
        return 29
    return (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)[month - 1]


def days_from_civil(year: int, month: int, day: int) -> int:
    """Days since 1970-01-01 of a proleptic Gregorian date.

    Valid for any integer year (including negative years, interpreted
    astronomically: year 0 exists and is a leap year).
    """
    prior_years = year - 1
    days = (
        prior_years * 365
        + prior_years // 4
        - prior_years // 100
        + prior_years // 400
    )
    days += _DAYS_BEFORE_MONTH[month]
    if month > 2 and is_leap_year(year):
        days += 1
    days += day - 1
    # Rebase from 0001-01-01 (rata die day 0 above) to the Unix epoch.
    return days - 719162
