"""Substring and regular-expression index (the paper's future work).

The paper closes with: "We intend to expand our work by designing
indices capable of answering queries that involve substring matching
and regular expressions."  This module is that extension, built in the
same spirit as the published indices — generic (every value leaf of
every document), self-tuning, compact, and updatable.

Design: a positional *q-gram* inverted index over the value leaves
(text and attribute nodes).  Every window of ``q`` characters of a
leaf value is hashed (with the paper's own hash function ``H`` — it is
a fine string hash) and mapped to the set of leaves containing it.

* ``contains(s)`` with ``len(s) >= q``: candidates = intersection of
  the posting sets of ``s``'s grams, then exact verification — no
  false negatives, collisions/verification remove false positives.
* shorter needles fall back to scanning (reported by the planner).
* regular expressions: mandatory literal factors of the pattern are
  extracted; the longest factor of length >= q prunes candidates,
  which are then verified with ``re``.

Like the paper's indices the structure is leaf-accurate: element-level
predicates (whose string value concatenates leaves) are answered by
verifying candidate ancestors, and a match that spans a leaf boundary
can only be found by the scan fallback — the classic q-gram trade-off,
documented in DESIGN.md.
"""

from __future__ import annotations

from collections import Counter

from .hashing import hash_string

__all__ = ["SubstringIndex", "literal_factors"]

#: Default gram width: 3 balances posting-list size and selectivity.
DEFAULT_Q = 3


def _grams(text: str, q: int) -> set[int]:
    """Distinct hashed q-grams of ``text`` (empty if shorter than q)."""
    if len(text) < q:
        return set()
    return {hash_string(text[i : i + q]) for i in range(len(text) - q + 1)}


def literal_factors(pattern: str) -> list[str]:
    """Mandatory literal factors of a regular expression.

    Conservative extraction: anything inside alternations, groups or
    adjacent to quantifiers is discarded, so every returned factor is
    guaranteed to occur in any match of the pattern.  Returns ``[]``
    when nothing can be guaranteed (the index then cannot prune).
    """
    factors: list[str] = []
    current: list[str] = []
    i = 0
    n = len(pattern)

    def flush(drop_last: bool = False) -> None:
        if drop_last and current:
            current.pop()
        if current:
            factors.append("".join(current))
        current.clear()

    while i < n:
        ch = pattern[i]
        if ch == "\\" and i + 1 < n:
            escaped = pattern[i + 1]
            if escaped.isalnum():  # \d, \w, \1 ... are classes/refs
                flush()
            else:
                current.append(escaped)
            i += 2
            continue
        if ch in "*+?":
            # The previous atom is optional/repeated: not mandatory.
            flush(drop_last=True)
            i += 1
            continue
        if ch == "{":
            close = pattern.find("}", i)
            flush(drop_last=True)
            i = close + 1 if close != -1 else n
            continue
        if ch in "([":
            # Skip the whole group/class: contents are not guaranteed.
            flush()
            closer = ")" if ch == "(" else "]"
            depth = 1
            i += 1
            while i < n and depth:
                if pattern[i] == "\\":
                    i += 2
                    continue
                if pattern[i] == ch:
                    depth += 1
                elif pattern[i] == closer:
                    depth -= 1
                i += 1
            continue
        if ch == "|":
            # Top-level alternation: no factor is mandatory at all
            # (alternations inside groups are skipped with the group).
            return []
        if ch in ".^$)]":
            flush()
            i += 1
            continue
        current.append(ch)
        i += 1
    flush()
    return [f for f in factors if f]


class SubstringIndex:
    """Positional q-gram index over value leaves.

    Args:
        q: Gram width (>= 2).
    """

    def __init__(self, q: int = DEFAULT_Q):
        if q < 2:
            raise ValueError("q must be at least 2")
        self.q = q
        # gram hash -> set of leaf nids containing the gram.
        self._postings: dict[int, set[int]] = {}
        # leaf nid -> its current gram set (for delta maintenance).
        self._grams_of: dict[int, set[int]] = {}
        # leaves too short to carry any gram (scan fallback set —
        # they can still match needles shorter than themselves).
        self._short: set[int] = set()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def set_entry(self, nid: int, text: str) -> None:
        """Insert or refresh one leaf's grams (delta update)."""
        new = _grams(text, self.q)
        old = self._grams_of.get(nid, set())
        for gram in old - new:
            postings = self._postings.get(gram)
            if postings is not None:
                postings.discard(nid)
                if not postings:
                    del self._postings[gram]
        for gram in new - old:
            self._postings.setdefault(gram, set()).add(nid)
        if new:
            self._grams_of[nid] = new
            self._short.discard(nid)
        else:
            self._grams_of.pop(nid, None)
            if text:
                self._short.add(nid)
            else:
                self._short.discard(nid)

    def remove_entry(self, nid: int) -> None:
        """Drop a leaf's grams (subtree deletion)."""
        for gram in self._grams_of.pop(nid, set()):
            postings = self._postings.get(gram)
            if postings is not None:
                postings.discard(nid)
                if not postings:
                    del self._postings[gram]
        self._short.discard(nid)

    def remove_entries(self, nids) -> int:
        """Bulk form of :meth:`remove_entry` (document unload).

        Collects the union of dropped grams first and prunes each
        posting list once, instead of per-nid discards.
        """
        drop = [nid for nid in nids if nid in self._grams_of or nid in self._short]
        dropped = set(drop)
        touched: set[int] = set()
        for nid in drop:
            touched |= self._grams_of.pop(nid, set())
            self._short.discard(nid)
        for gram in touched:
            postings = self._postings.get(gram)
            if postings is not None:
                postings -= dropped
                if not postings:
                    del self._postings[gram]
        return len(drop)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def supports(self, needle: str) -> bool:
        """True iff the index can prune candidates for this needle."""
        return len(needle) >= self.q

    def candidates(self, needle: str) -> set[int] | None:
        """Leaf nids that *may* contain ``needle``.

        ``None`` means the index cannot answer (needle shorter than q)
        and the caller must scan.  The result can contain false
        positives (hash collisions) but never misses a leaf whose own
        text contains the needle.
        """
        if not self.supports(needle):
            return None
        result: set[int] | None = None
        # Intersect rarest-first for cheap early exits.
        grams = sorted(
            _grams(needle, self.q),
            key=lambda g: len(self._postings.get(g, ())),
        )
        for gram in grams:
            postings = self._postings.get(gram)
            if not postings:
                return set()
            result = set(postings) if result is None else result & postings
            if not result:
                return set()
        return result if result is not None else set()

    def estimate_candidates(self, needle: str) -> int | None:
        """Cheap upper bound on ``candidates(needle)`` without set work:
        the smallest posting list among the needle's grams.  ``None``
        when the needle is too short for the index."""
        if not self.supports(needle):
            return None
        sizes = [
            len(self._postings.get(gram, ()))
            for gram in _grams(needle, self.q)
        ]
        return min(sizes) if sizes else 0

    def candidates_for_regex(self, pattern: str) -> set[int] | None:
        """Leaf nids that may match ``pattern`` (prefiltered by the
        longest mandatory literal factor); ``None`` if no factor of
        length >= q exists."""
        factors = [f for f in literal_factors(pattern) if len(f) >= self.q]
        if not factors:
            return None
        return self.candidates(max(factors, key=len))

    # ------------------------------------------------------------------
    # Statistics / storage model
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of indexed leaves (with at least one gram)."""
        return len(self._grams_of)

    def posting_count(self) -> int:
        return sum(len(p) for p in self._postings.values())

    def byte_size(self) -> int:
        """Modelled storage: 4-byte gram hash per distinct gram plus a
        4-byte nid per posting."""
        return 4 * len(self._postings) + 4 * self.posting_count()

    def gram_distribution(self) -> dict[int, int]:
        """posting-list length -> number of grams (selectivity probe)."""
        return dict(Counter(len(p) for p in self._postings.values()))
