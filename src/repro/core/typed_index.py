"""The typed range index (paper Section 4).

For one XML type (double, dateTime, ...) the index keeps:

* per non-rejected node, its FSM state plus the compact token payload
  (:class:`~repro.core.fsm.fragment.Fragment`) — the paper's
  ``[node id, state]`` side structure;
* a clustered B-tree on ``(typed value, nid)`` over the nodes whose
  fragment is a complete ("castable") lexical value — the paper's
  ``[value, state, node id]`` tuples supporting range lookups.

Nodes whose value is rejected by the FSM store *nothing* ("the absence
of a state signifies the reject state"), which is why the double index
stays at 2-3% of database size in the paper's Figure 9.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

from ..btree import BPlusTree
from .classify import legality_mask
from .concurrency import active_view
from .fsm import Fragment, REJECT_FRAGMENT, get_plugin

__all__ = ["TypedIndex"]

_MAX_NID = 1 << 62


class TypedIndex:
    """Range index over one XML type's castable values."""

    def __init__(self, type_name: str, order: int = 64):
        self.plugin = get_plugin(type_name)
        self.type_name = type_name
        #: Builder protocol: field contributed by absent content.
        self.identity = self.plugin.empty_fragment
        # nid -> Fragment, for non-rejected nodes only.
        self.fragment_of_node: dict[int, Fragment] = {}
        # nid -> typed value, for nodes present in the value tree
        # (needed to locate the (value, nid) key on maintenance).
        self._value_of: dict[int, Any] = {}
        self.tree = BPlusTree(order=order, key_bytes=12, value_bytes=0)
        self._staged: list[tuple[Any, int]] | None = None
        #: Counts entry changes; used to invalidate planner statistics.
        self.mutations = 0

    # ------------------------------------------------------------------
    # Builder protocol
    # ------------------------------------------------------------------

    def field_of_text(self, text: str) -> Fragment:
        """Run the FSM over a text value (paper Figure 7, line 7)."""
        return self.plugin.fragment_of_text(text)

    def field_of_texts(self, texts: list[str]) -> list[Fragment]:
        """Batch form of :meth:`field_of_text` (builder batch hook).

        Classifies all texts at once with the vectorized region kernel
        (:func:`repro.core.classify.legality_mask`): texts carrying any
        character outside the type's alphabet — the vast majority —
        reject without ever running the scalar tokenizer.
        """
        mask = legality_mask(self.plugin, texts)
        fragment_of_text = self.plugin.fragment_of_text
        if mask is None:
            return [fragment_of_text(text) for text in texts]
        return [
            fragment_of_text(text) if legal else REJECT_FRAGMENT
            for text, legal in zip(texts, mask)
        ]

    def combine(self, left: Fragment, right: Fragment) -> Fragment:
        """SCT probe + payload merge (paper Figure 7, lines 14/18)."""
        return self.plugin.combine(left, right)

    def begin_bulk(self) -> None:
        self._staged = []

    def stage_entry(self, nid: int, field: Fragment) -> None:
        if field.state == 0:  # rejected: store nothing
            return
        self.fragment_of_node[nid] = field
        value = self.plugin.cast(field)
        if value is not None:
            self._value_of[nid] = value
            self._staged.append((value, nid))

    def is_stored_field(self, field: Fragment) -> bool:
        """True iff staging ``field`` would store anything (parallel
        chunk workers drop rejected entries before shipping them)."""
        return field.state != 0

    def stage_entries(self, pairs: list[tuple[int, Fragment]]) -> None:
        """Batch form of :meth:`stage_entry` over ``(nid, field)`` runs."""
        for nid, field in pairs:
            self.stage_entry(nid, field)

    def finish_bulk(self) -> None:
        """Bulk-load the value tree, merging entries of earlier loads."""
        staged = self._staged
        self._staged = None
        staged.sort()
        self.mutations += len(staged)
        if len(self.tree):
            existing = list(self.tree.keys())
            entries = heapq.merge(existing, ((v, n) for v, n in staged))
        else:
            entries = iter(staged)
        self.tree.bulk_load((key, None) for key in entries)

    def set_entry(self, nid: int, field: Fragment) -> None:
        self.mutations += 1
        old_value = self._value_of.pop(nid, None)
        if old_value is not None:
            self.tree.delete((old_value, nid))
        if field.state == 0:
            self.fragment_of_node.pop(nid, None)
            return
        self.fragment_of_node[nid] = field
        value = self.plugin.cast(field)
        if value is not None:
            self._value_of[nid] = value
            self.tree.insert((value, nid))

    def remove_entry(self, nid: int) -> None:
        self.mutations += 1
        self.fragment_of_node.pop(nid, None)
        old_value = self._value_of.pop(nid, None)
        if old_value is not None:
            self.tree.delete((old_value, nid))

    def remove_entries(self, nids) -> int:
        """Bulk form of :meth:`remove_entry` (document unload).

        Drops all side-structure entries and removes the value-tree
        keys in one :meth:`~repro.btree.BPlusTree.remove_many` pass.
        Returns the number of nodes that had a stored state.
        """
        keys = []
        removed = 0
        fragment_of_node = self.fragment_of_node
        value_of = self._value_of
        for nid in nids:
            if fragment_of_node.pop(nid, None) is not None:
                removed += 1
            old_value = value_of.pop(nid, None)
            if old_value is not None:
                keys.append((old_value, nid))
        if keys:
            self.tree.remove_many(keys)
        if removed or keys:
            self.mutations += max(removed, len(keys))
        return removed

    def field_of(self, nid: int) -> Fragment:
        """Stored fragment of a node (REJECT for absent entries)."""
        return self.fragment_of_node.get(nid, REJECT_FRAGMENT)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def value_of(self, nid: int) -> Any:
        """Typed value of a node, or None if not castable."""
        return self._value_of.get(nid)

    def _lookup_tree(self):
        """The tree to answer lookups from: the active read view's
        pinned snapshot when one is installed, else the live tree."""
        view = active_view()
        if view is not None:
            pinned = view.tree_for(self)
            if pinned is not None:
                return pinned
        return self.tree

    def lookup_equal(self, value: Any) -> Iterator[int]:
        """nids whose typed value equals ``value`` (no false positives)."""
        for (_value, nid), _none in self._lookup_tree().range(
            (value, -1), (value, _MAX_NID)
        ):
            yield nid

    def lookup_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        """(value, nid) pairs with ``low <op> value <op> high``."""
        low_key = None if low is None else (low, -1 if include_low else _MAX_NID)
        high_key = None if high is None else (high, _MAX_NID if include_high else -1)
        for (value, nid), _none in self._lookup_tree().range(
            low_key, high_key, include_low=True, include_high=include_high
        ):
            yield value, nid

    def range_nids(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[int]:
        """Batched :meth:`lookup_range` returning just the nids.

        Collects the ``(value, nid)`` keys with the tree's leaf-slice
        range scan (one list, no per-entry generator frames) — the
        index-scan primitive of the vectorized executor.
        """
        low_key = None if low is None else (low, -1 if include_low else _MAX_NID)
        high_key = None if high is None else (high, _MAX_NID if include_high else -1)
        keys = self._lookup_tree().range_keys(
            low_key, high_key, include_low=True, include_high=include_high
        )
        return [nid for _value, nid in keys]

    def equal_nids(self, value: Any) -> list[int]:
        """Batched :meth:`lookup_equal` (exact, no false positives)."""
        keys = self._lookup_tree().range_keys((value, -1), (value, _MAX_NID))
        return [nid for _value, nid in keys]

    def top_values(
        self, k: int, largest: bool = True
    ) -> list[tuple[Any, int]]:
        """The ``k`` extreme (value, nid) entries of the value tree.

        ``largest=True`` walks the tree right-to-left (descending
        values); ``False`` returns the smallest entries ascending.
        """
        if k <= 0:
            return []
        tree = self._lookup_tree()
        entries = tree.items_reversed() if largest else tree.items()
        result = []
        for (value, nid), _none in entries:
            result.append((value, nid))
            if len(result) == k:
                break
        return result

    # ------------------------------------------------------------------
    # Statistics / storage model
    # ------------------------------------------------------------------

    def potential_count(self) -> int:
        """Nodes with a stored (non-rejected) state."""
        return len(self.fragment_of_node)

    def castable_count(self) -> int:
        """Nodes with a complete typed value in the value tree."""
        return len(self._value_of)

    def byte_size(self) -> int:
        """Modelled storage: 8 bytes per indexed value, the per-node
        state/payload bytes for every stored fragment, and the value
        tree's inner overhead — mirroring the paper's [value, state]
        accounting (their XMark1 double index is ~9 bytes per indexed
        node: an 8-byte double + 1-byte state)."""
        size = 8 * len(self._value_of)
        byte_size_of = self.plugin.byte_size_of
        for fragment in self.fragment_of_node.values():
            size += byte_size_of(fragment)
        return size + self.tree.inner_byte_size()
