"""Index statistics for cost-based query planning.

The paper's indices always *can* answer a value predicate; whether they
*should* is a selectivity question: an unselective range (``price > 0``
matches everything) is cheaper to answer by scanning than by walking
the index and verifying every candidate's structure.  This module
provides the estimates the planner's ``auto`` mode uses:

* an equi-depth histogram over a typed index's values (range and
  equality selectivity);
* hash-bucket statistics for the string index (equality selectivity);
* leaf-count statistics for the substring index via gram posting lists.

Statistics are snapshots: they record the index's mutation counter at
build time and are recomputed by the manager once the index has drifted
past a threshold.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any

__all__ = [
    "EquiDepthHistogram",
    "TypedIndexStatistics",
    "StringIndexStatistics",
]


class EquiDepthHistogram:
    """Equi-depth histogram over an ordered multiset of values.

    Bucket boundaries hold (approximately) equal numbers of entries, so
    skewed distributions keep uniform per-bucket resolution.
    """

    def __init__(self, values: list[Any], buckets: int = 32):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.total = len(values)
        self._bounds: list[Any] = []
        if not values:
            return
        ordered = sorted(values)
        self.minimum = ordered[0]
        self.maximum = ordered[-1]
        step = max(1, self.total // buckets)
        # bounds[i] = upper value of bucket i; depth per bucket = step.
        self._bounds = [
            ordered[min(i + step - 1, self.total - 1)]
            for i in range(0, self.total, step)
        ]
        self._depth = step

    def estimate_less_equal(self, value: Any) -> float:
        """Estimated number of entries <= value."""
        if not self._bounds:
            return 0.0
        if value < self.minimum:
            return 0.0
        if value >= self.maximum:
            return float(self.total)
        bucket = bisect.bisect_left(self._bounds, value)
        # Everything in full buckets below, half of the hit bucket.
        return min(float(self.total), bucket * self._depth + self._depth / 2)

    def estimate_range(self, low: Any = None, high: Any = None) -> float:
        """Estimated number of entries in [low, high]."""
        if not self._bounds:
            return 0.0
        upper = (
            float(self.total) if high is None else self.estimate_less_equal(high)
        )
        lower = 0.0
        if low is not None:
            lower = self.estimate_less_equal(low)
            # Subtracting <=low removes low itself; give back one
            # bucket-average worth of equals.
            lower = max(0.0, lower - self.estimate_equal(low))
        return max(0.0, upper - lower)

    def estimate_equal(self, value: Any) -> float:
        """Estimated number of entries equal to value."""
        if not self._bounds:
            return 0.0
        if value < self.minimum or value > self.maximum:
            return 0.0
        # Uniformity within the bucket: depth / distinct-in-bucket is
        # unknown, so assume each bucket holds `depth` entries spread
        # over at least one distinct value.
        span = bisect.bisect_right(self._bounds, value) - bisect.bisect_left(
            self._bounds, value
        )
        return max(1.0, float(span * self._depth), self._depth / 8)


@dataclass
class TypedIndexStatistics:
    """Snapshot statistics of one typed index."""

    histogram: EquiDepthHistogram
    mutations: int

    @classmethod
    def from_index(cls, index, buckets: int = 32) -> "TypedIndexStatistics":
        values = [value for value, _nid in index.tree.keys()]
        return cls(
            histogram=EquiDepthHistogram(values, buckets),
            mutations=index.mutations,
        )

    @classmethod
    def from_tree(
        cls, tree, mutations: int, buckets: int = 32
    ) -> "TypedIndexStatistics":
        """Build from a pinned tree snapshot (epoch-consistent reads).

        ``mutations`` records the snapshot's identity (a read view
        passes its epoch) — drift-based refresh does not apply to a
        frozen view.
        """
        values = [value for value, _nid in tree.keys()]
        return cls(
            histogram=EquiDepthHistogram(values, buckets),
            mutations=mutations,
        )

    def estimate(self, op: str, literal: Any) -> float:
        """Estimated candidates for ``value <op> literal``."""
        histogram = self.histogram
        if op == "=":
            return histogram.estimate_equal(literal)
        if op == "<=":
            return histogram.estimate_less_equal(literal)
        if op == "<":
            return max(
                0.0,
                histogram.estimate_less_equal(literal)
                - histogram.estimate_equal(literal),
            )
        if op == ">=":
            return max(
                0.0, histogram.total - self.estimate("<", literal)
            )
        if op == ">":
            return max(0.0, histogram.total - self.estimate("<=", literal))
        return float(histogram.total)


@dataclass
class StringIndexStatistics:
    """Snapshot statistics of the string equality index."""

    entries: int
    distinct_hashes: int
    mutations: int

    @classmethod
    def from_index(cls, index) -> "StringIndexStatistics":
        distinct = len({field for field in index.hash_of.values()})
        return cls(
            entries=len(index),
            distinct_hashes=max(1, distinct),
            mutations=index.mutations,
        )

    @classmethod
    def from_tree(cls, tree, mutations: int) -> "StringIndexStatistics":
        """Build from a pinned tree snapshot; keys are (hash, nid)."""
        distinct = len({key[0] for key in tree.keys()})
        return cls(
            entries=len(tree),
            distinct_hashes=max(1, distinct),
            mutations=mutations,
        )

    def estimate_equal(self) -> float:
        """Expected candidates per equality lookup (avg bucket size)."""
        return self.entries / self.distinct_hashes
