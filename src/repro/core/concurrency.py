"""Snapshot-isolated readers over the index manager.

This module gives the reproduction its concurrent serving path
(``docs/concurrency.md`` is the protocol spec):

* **Readers** open a :class:`ReadView` — an O(1) pin of the last
  *published* :class:`ManagerSnapshot` (the manager's epoch plus one
  :class:`~repro.btree.bplus.TreeSnapshot` per index).  For the view's
  lifetime the thread's index lookups resolve against those immutable
  tree roots and its text reads resolve through the MVCC overlay
  (:mod:`repro.xmldb.mvcc`) at the pinned epoch — lock-free with
  respect to text writers.
* **Text writers** serialize among themselves (one writer RLock),
  record before-values into the overlay, mutate the copy-on-write
  trees, and *publish* a new snapshot at the end — so a reader either
  sees all of an update's index entries and text values, or none.
* **Structural writers** (subtree insert/delete, loads/unloads, index
  builds, checkpoints) splice columns in place, which cannot be
  versioned cheaply — they take the latch *exclusively*, draining
  active views first.  This stop-the-world path is the documented
  trade-off; the serving workload (queries + text updates) never
  takes it.

The latch is shared/exclusive with thread-local reentrancy; readers
and text writers both hold it shared, so readers never block behind a
text update.  Single-threaded use pays one ``is None`` check per
operation: a manager without a controller behaves exactly as before.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from ..xmldb.mvcc import TextOverlay, reading_at

if TYPE_CHECKING:  # pragma: no cover
    from ..btree.bplus import TreeSnapshot
    from .manager import IndexManager

__all__ = [
    "ConcurrencyController",
    "EpochNotRetained",
    "ManagerSnapshot",
    "ReadView",
    "ReadWriteLatch",
    "SessionPin",
    "active_view",
]


class EpochNotRetained(LookupError):
    """An ``as_of`` epoch outside the retained time-travel window."""

_tls = threading.local()


def active_view() -> "ReadView | None":
    """The ReadView this thread is currently executing under, if any."""
    return getattr(_tls, "view", None)


class ReadWriteLatch:
    """A shared/exclusive latch with per-thread reentrancy.

    * ``shared`` — many holders; taken by read views *and* text
      writers (they coexist via MVCC).
    * ``exclusive`` — single holder, waits for all shared holders to
      drain and blocks new ones (arrival of an exclusive waiter gates
      fresh shared acquires, so structural writers cannot starve).

    A thread already holding the latch (either mode) re-acquires
    shared for free; exclusive-in-exclusive nests.  Upgrading shared
    to exclusive would self-deadlock and raises instead.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._shared = 0
        self._exclusive_owner: int | None = None
        self._exclusive_waiting = 0
        self._tls = threading.local()

    def _depth(self, mode: str) -> int:
        return getattr(self._tls, mode, 0)

    def _bump(self, mode: str, delta: int) -> int:
        value = getattr(self._tls, mode, 0) + delta
        setattr(self._tls, mode, value)
        return value

    def acquire_shared(self) -> None:
        if self._exclusive_owner == threading.get_ident() or self._depth("s"):
            self._bump("s", 1)
            return
        with self._cond:
            while self._exclusive_owner is not None or self._exclusive_waiting:
                self._cond.wait()
            self._shared += 1
        self._bump("s", 1)

    def release_shared(self) -> None:
        if self._bump("s", -1):
            return
        if self._exclusive_owner == threading.get_ident():
            return  # was a reentrant no-op under our own exclusive
        with self._cond:
            self._shared -= 1
            if self._shared == 0:
                self._cond.notify_all()

    def acquire_exclusive(self) -> None:
        me = threading.get_ident()
        if self._exclusive_owner == me:
            self._bump("x", 1)
            return
        if self._depth("s"):
            raise RuntimeError("cannot upgrade a shared latch to exclusive")
        with self._cond:
            self._exclusive_waiting += 1
            try:
                while self._exclusive_owner is not None or self._shared:
                    self._cond.wait()
                self._exclusive_owner = me
            finally:
                self._exclusive_waiting -= 1
        self._bump("x", 1)

    def release_exclusive(self) -> None:
        if self._bump("x", -1):
            return
        with self._cond:
            self._exclusive_owner = None
            self._cond.notify_all()

    @contextmanager
    def shared(self) -> Iterator[None]:
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()


class ManagerSnapshot:
    """One published version of the manager's index state."""

    __slots__ = ("epoch", "trees")

    def __init__(self, epoch: int, trees: dict[Any, "TreeSnapshot"]):
        self.epoch = epoch
        #: index object -> pinned TreeSnapshot of its value tree.
        self.trees = trees


class ReadView:
    """A query's pinned, immutable view of the database.

    Context manager: entering takes the latch shared, pins the last
    published snapshot, and installs the thread-local read context so
    index lookups (via each index's ``_lookup_tree``) and document
    text reads (via the MVCC overlay) resolve at this view's epoch.
    Statistics are computed from the pinned trees and memoized, so a
    plan priced inside the view can never mix epochs.

    ``at`` pins a specific (already captured) snapshot instead of the
    currently published one — the serving layer uses this to run each
    network request of a pinned session at the session's epoch.

    Entering is exception-safe: if anything after the shared-latch
    acquire fails, the latch, the pin and the thread-local are all
    rolled back before the exception propagates (a leaked shared hold
    would wedge every future structural writer).  Exiting forwards the
    real exception triple to the MVCC reading scope.
    """

    def __init__(self, controller: "ConcurrencyController",
                 at: "ManagerSnapshot | None" = None):
        self._controller = controller
        self._at = at
        self.snapshot: ManagerSnapshot | None = None
        self.epoch: int | None = None
        self._stats: dict[str, Any] = {}
        self._reading = None
        self._previous_view: "ReadView | None" = None
        self._depth = 0

    def __enter__(self) -> "ReadView":
        if self._depth == 0:
            controller = self._controller
            controller.latch.acquire_shared()
            try:
                # Atomic capture + pin: a publish/prune cannot slip
                # between reading the snapshot and registering
                # against it.
                self.snapshot = controller.pin(self, self._at)
                self.epoch = self.snapshot.epoch
                self._previous_view = active_view()
                reading = reading_at(self.epoch)
                reading.__enter__()
                self._reading = reading
                _tls.view = self
            except BaseException:
                self.snapshot = None
                self.epoch = None
                self._previous_view = None
                controller.release_pin(self)
                controller.latch.release_shared()
                raise
        self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        self._depth -= 1
        if self._depth:
            return
        if not exc:
            exc = (None, None, None)
        try:
            reading = self._reading
            self._reading = None
            if reading is not None:
                reading.__exit__(*exc)
        finally:
            _tls.view = self._previous_view
            self._previous_view = None
            try:
                self._controller.release_pin(self)
            finally:
                self._controller.latch.release_shared()

    def tree_for(self, index: Any) -> "TreeSnapshot | None":
        """The pinned tree snapshot backing ``index``, if captured."""
        return self.snapshot.trees.get(index)

    def statistics(self, kind: str):
        """View-local planner statistics at this view's epoch."""
        cached = self._stats.get(kind)
        if cached is None:
            cached = self._controller.view_statistics(self, kind)
            self._stats[kind] = cached
        return cached


class SessionPin:
    """A long-lived epoch pin that does *not* hold the latch.

    Network sessions pin a snapshot across many requests; holding the
    shared latch for a connection's lifetime would block structural
    writers and checkpoints indefinitely, so a session pin only
    registers in the controller's pin table (keeping the MVCC overlay
    versions for its epoch alive — the pinned trees are immutable
    copy-on-write snapshots and need no protection).  The trade-off:
    structural operations are *not* excluded and splice the shared
    document arrays in place, invalidating the pinned view; the
    serving layer checks :meth:`ConcurrencyController.pin_valid`
    inside each request's latched scope and reports
    ``view invalidated`` to the client instead of serving torn data.
    """

    __slots__ = ("snapshot", "epoch", "structural_epoch")

    def __init__(self, snapshot: ManagerSnapshot, structural_epoch: int):
        self.snapshot = snapshot
        self.epoch = snapshot.epoch
        self.structural_epoch = structural_epoch


class ConcurrencyController:
    """Coordinates readers, text writers and structural writers.

    Owned by an :class:`~repro.core.manager.IndexManager` once
    concurrency is enabled; the manager's read and write paths consult
    it (``manager.concurrency``) and otherwise run untouched.
    """

    def __init__(self, manager: "IndexManager"):
        self.manager = manager
        self.latch = ReadWriteLatch()
        #: Serializes writers (text and structural); reentrant so the
        #: Database layer can hold it across WAL append + apply.
        self.write_lock = threading.RLock()
        #: One lock guards the published snapshot *and* the pin table:
        #: a reader's capture+pin and a writer's publish are atomic
        #: with respect to each other, so pruning can never compute an
        #: oldest-pin that misses a reader mid-registration.
        self._state_lock = threading.Lock()
        self._pins: dict[int, int] = {}  # id(view/pin) -> pinned epoch
        #: Bumped by every structural exclusive operation (not by
        #: checkpoints, which drain readers but change no state);
        #: session pins capture it to detect invalidation.
        self.structural_epoch = 0
        #: Time-travel window: how many published snapshots to retain
        #: for "as of" reads (0 = none; set via :meth:`set_retention`).
        self.retain_epochs = 0
        self._retained: deque[ManagerSnapshot] = deque()
        self._published = self._capture()
        self._attach_overlays()

    # -- snapshot publication -------------------------------------------

    def _capture(self) -> ManagerSnapshot:
        manager = self.manager
        trees = {index: index.tree.snapshot() for index in manager.indexes}
        return ManagerSnapshot(manager.epoch, trees)

    def publish(self) -> None:
        """Publish the manager's current state as the new snapshot.

        Called by writers after they finish applying (and bumping the
        epoch); the assignment is the readers' visibility point.
        """
        snapshot = self._capture()
        with self._state_lock:
            self._published = snapshot
            self._retain_locked(snapshot)
        self._attach_overlays()
        self.prune_overlays()
        self.manager.metrics.counter("concurrency.publishes").inc()

    def published(self) -> ManagerSnapshot:
        with self._state_lock:
            return self._published

    # -- time-travel retention -------------------------------------------

    def _retain_locked(self, snapshot: ManagerSnapshot) -> None:
        if self.retain_epochs <= 0:
            return
        if self._retained and self._retained[-1].epoch == snapshot.epoch:
            # Drain-only publishes (checkpoints) re-publish the same
            # epoch with fresh tree pins; keep one entry per epoch.
            self._retained[-1] = snapshot
        else:
            self._retained.append(snapshot)
        while len(self._retained) > self.retain_epochs:
            self._retained.popleft()

    def set_retention(self, epochs: int) -> None:
        """Size the retained-epoch window for "as of" reads.

        The currently published snapshot seeds the window so "as of
        now" is immediately answerable.  Shrinking (or zeroing) drops
        the oldest retained snapshots; the next prune reclaims their
        overlay versions.
        """
        with self._state_lock:
            self.retain_epochs = max(0, int(epochs))
            if self.retain_epochs == 0:
                self._retained.clear()
            else:
                self._retain_locked(self._published)

    def retained_epochs(self) -> list[int]:
        """Epochs currently answerable by :meth:`read_view_as_of`,
        oldest first (always includes the published epoch)."""
        with self._state_lock:
            epochs = [snap.epoch for snap in self._retained]
            if not epochs or epochs[-1] != self._published.epoch:
                epochs.append(self._published.epoch)
        return epochs

    def snapshot_as_of(self, epoch: int) -> ManagerSnapshot:
        """The retained snapshot published at ``epoch``.

        Raises :class:`EpochNotRetained` when that epoch is not in the
        retained window (never published, already evicted, or
        invalidated by a structural operation).
        """
        with self._state_lock:
            if epoch == self._published.epoch:
                return self._published
            for snap in reversed(self._retained):
                if snap.epoch == epoch:
                    return snap
            retained = [s.epoch for s in self._retained]
        raise EpochNotRetained(
            f"epoch {epoch} is not retained "
            f"(window: {retained or [self.published().epoch]})"
        )

    def read_view_as_of(self, epoch: int) -> ReadView:
        """A view pinned at a *retained* historical epoch."""
        return ReadView(self, at=self.snapshot_as_of(epoch))

    def _attach_overlays(self) -> None:
        for doc in self.manager.store.documents.values():
            if doc.text_overlay is None:
                doc.text_overlay = TextOverlay()

    # -- reader pins -----------------------------------------------------

    def read_view(self) -> ReadView:
        return ReadView(self)

    def read_view_at(self, pin: SessionPin) -> ReadView:
        """A per-request view resolving at ``pin``'s session snapshot."""
        return ReadView(self, at=pin.snapshot)

    def pin(self, view: ReadView,
            at: ManagerSnapshot | None = None) -> ManagerSnapshot:
        """Atomically capture the published snapshot and pin it.

        Snapshot read and pin registration happen under one lock, so a
        concurrent publish+prune either sees this view's pin or hands
        it the new snapshot — never an unpinned stale epoch whose
        overlay entries pruning could reclaim.  ``at`` pins that
        snapshot instead of the published one (its epoch is already
        protected by the session pin that owns it).
        """
        with self._state_lock:
            snapshot = self._published if at is None else at
            self._pins[id(view)] = snapshot.epoch
        self.manager.metrics.counter("concurrency.epoch_pins").inc()
        return snapshot

    def open_pin(self) -> SessionPin:
        """Register a long-lived session pin at the published snapshot
        (see :class:`SessionPin`; released with :meth:`close_pin`)."""
        with self._state_lock:
            snapshot = self._published
            pin = SessionPin(snapshot, self.structural_epoch)
            self._pins[id(pin)] = snapshot.epoch
        self.manager.metrics.counter("concurrency.session_pins").inc()
        return pin

    def close_pin(self, pin: SessionPin) -> None:
        self.release_pin(pin)

    def pin_valid(self, pin: SessionPin) -> bool:
        """False once a structural operation has invalidated ``pin``.

        Only meaningful while the caller holds the latch shared (a
        structural writer could otherwise invalidate it between the
        check and the reads it guards).
        """
        return pin.structural_epoch == self.structural_epoch

    def release_pin(self, view: object) -> None:
        with self._state_lock:
            self._pins.pop(id(view), None)
            empty = not self._pins
        # Prune only if no writer is mid-update: holding the writer
        # lock excludes overlay record() calls, whose freshly written
        # before-values (stamped for the not-yet-published epoch) must
        # survive until that writer publishes.  Blocking here would
        # deadlock — this thread still holds the latch shared, and a
        # structural writer may hold write_lock while waiting for
        # shared holders to drain — so a busy writer means we skip and
        # let its own publish() prune.
        if empty and self.write_lock.acquire(blocking=False):
            try:
                self.prune_overlays()
            finally:
                self.write_lock.release()

    def oldest_pin(self) -> int | None:
        with self._state_lock:
            return min(self._pins.values()) if self._pins else None

    def prune_overlays(self) -> None:
        """Drop overlay versions no pinned reader can still observe.

        The published epoch acts as an implicit pin: a new reader may
        pin it at any instant, and a mid-flight text update's
        before-values are stamped ``published + 1``, so the prune bound
        is ``min(oldest_pin, published_epoch)`` — entries above the
        published epoch always survive until their writer publishes.
        Callers hold the writer lock (publish path) or have verified no
        writer is active (release_pin's non-blocking acquire), so
        pruning never races a recording writer's chain mutation.
        """
        with self._state_lock:
            oldest = min(self._pins.values()) if self._pins else None
            published = self._published.epoch
            if self._retained:
                # Retained snapshots are implicit pins: an "as of"
                # reader may still resolve text at the oldest one.
                retained = self._retained[0].epoch
                oldest = retained if oldest is None else min(oldest,
                                                             retained)
        bound = published if oldest is None else min(oldest, published)
        for doc in self.manager.store.documents.values():
            overlay = doc.text_overlay
            if overlay is not None:
                overlay.prune(bound)

    # -- writer scopes ---------------------------------------------------

    def check_write_allowed(self) -> None:
        """Fail fast instead of deadlocking on a write inside a view.

        A thread inside a :class:`ReadView` holds the latch shared; if
        it then waits on ``write_lock`` while a structural writer holds
        that lock and waits in ``latch.exclusive()`` for shared holders
        to drain, both hang.  Mirrors the latch's shared→exclusive
        upgrade check: raise before entering the cycle.
        """
        if active_view() is not None:
            raise RuntimeError(
                "cannot write from inside a read view: close the view "
                "before issuing updates (see docs/concurrency.md)"
            )

    @contextmanager
    def text_update(self) -> Iterator[int]:
        """Scope for an MVCC text update: writer lock + shared latch.

        Yields the epoch the update will commit as (current + 1);
        before-values recorded into the overlay carry this stamp.
        Publishes the new snapshot on exit.
        """
        self.check_write_allowed()
        with self.write_lock:
            with self.latch.shared():
                yield self.manager.epoch + 1
                self.publish()

    @contextmanager
    def exclusive(self, structural: bool = True) -> Iterator[None]:
        """Scope for a structural change: writer lock + exclusive latch.

        Drains all read views first; since no reader can be pinned
        while we hold the latch, overlays are cleared wholesale and
        the new snapshot is published on exit.  ``structural=False``
        marks drain-only exclusive scopes (checkpoints) that change no
        indexed state and therefore must not invalidate session pins.
        """
        self.check_write_allowed()
        with self.write_lock:
            with self.latch.exclusive():
                self.manager.metrics.counter("concurrency.exclusive_ops").inc()
                yield
                if structural:
                    with self._state_lock:
                        self.structural_epoch += 1
                        # In-place column splices invalidate every
                        # retained snapshot, exactly as they do session
                        # pins; drop the time-travel window rather than
                        # serve torn history.
                        self._retained.clear()
                self.publish()

    # -- view statistics -------------------------------------------------

    def view_statistics(self, view: ReadView, kind: str):
        """Planner statistics computed from ``view``'s pinned trees."""
        from ..errors import IndexError_
        from .statistics import StringIndexStatistics, TypedIndexStatistics

        manager = self.manager
        if kind == "string":
            if manager.string_index is None:
                raise IndexError_("string index not enabled")
            index = manager.string_index
        else:
            index = manager.typed_index(kind)
        tree = view.tree_for(index)
        if tree is None:
            # Index created after the view pinned (exclusive op, so no
            # such view can be live — defensive fallback only).
            return manager.statistics(kind)
        manager.metrics.counter("statistics.view_builds").inc()
        if kind == "string":
            return StringIndexStatistics.from_tree(tree, view.epoch)
        return TypedIndexStatistics.from_tree(tree, view.epoch)
