"""Index creation — the skeleton algorithm of paper Figure 7.

One depth-first pass over the document computes the field (hash value
or FSM state/fragment) of **every** node, for **all** registered
indices simultaneously: "since all indices are independent of each
other, creating and updating multiple defined indices can be done
simultaneously with only one pass".

The pass walks pre order with an explicit stack of open containers;
text nodes evaluate ``H``/the FSM, and when a container closes its
accumulated field folds into its parent via ``C``/the SCT — exactly
the control flow of Figure 7, expressed over the pre/size columns.

Attribute nodes are indexed on their own value but do not contribute
to their element's string value (XDM); comments and PIs are not
indexed and contribute nothing.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from ..xmldb.document import ATTR, DOC, ELEM, TEXT, Document

__all__ = ["ValueIndex", "build_document", "compute_fields"]


class ValueIndex(Protocol):
    """What builder/updater need from an index (string or typed)."""

    identity: object

    def field_of_text(self, text: str) -> object: ...

    def combine(self, left: object, right: object) -> object: ...

    def begin_bulk(self) -> None: ...

    def stage_entry(self, nid: int, field: object) -> None: ...

    def finish_bulk(self) -> None: ...

    def set_entry(self, nid: int, field: object) -> None: ...

    def remove_entry(self, nid: int) -> None: ...

    def remove_entries(self, nids: Sequence[int]) -> int: ...

    def field_of(self, nid: int) -> object: ...


def compute_fields(
    doc: Document,
    start: int,
    end: int,
    indexes: Sequence[ValueIndex],
    bulk: bool,
) -> list[object]:
    """Compute and store fields for all rows in ``[start, end]``.

    The range must cover complete subtrees (as pre ranges of siblings
    do).  With ``bulk`` the entries are staged for bulk-loading
    (creation); otherwise they go through ``set_entry`` (structural
    updates over freshly inserted subtrees).

    Returns, per index, the *contribution* of the whole range: the
    fold under ``C``/the SCT of the fields of the range's top-level
    element and text subtrees, in document order.  Because the
    combination functions are associative, a parent whose children were
    computed over several ranges recovers its exact field by folding
    the per-range contributions (see :mod:`repro.core.parallel`).
    """
    kinds = doc.kind
    sizes = doc.size
    nids = doc.nid
    enter = [index.stage_entry if bulk else index.set_entry for index in indexes]
    k = len(indexes)
    # Pre-compute leaf fields; indices with a batch hook (the string
    # index hashes all values vectorised) exploit it.
    leaf_pres = [
        pre
        for pre in range(start, end + 1)
        if kinds[pre] in (TEXT, ATTR)
    ]
    leaf_texts = [doc.text_of(pre) for pre in leaf_pres]
    leaf_fields: list[dict[int, object]] = []
    for index in indexes:
        batch = getattr(index, "field_of_texts", None)
        if batch is not None:
            fields = batch(leaf_texts)
        else:
            field_of_text = index.field_of_text
            fields = [field_of_text(text) for text in leaf_texts]
        leaf_fields.append(dict(zip(leaf_pres, fields)))
    if k == 1:
        return [
            _compute_fields_single(
                doc, start, end, indexes[0], enter[0], leaf_fields[0]
            )
        ]
    # Stack frames: (subtree_end_pre, nid, [accumulator per index]).
    # The bottom frame is a sentinel (nid None) accumulating the
    # contribution of the range's top-level subtrees.
    stack: list[tuple[int, int | None, list]] = [
        (end, None, [index.identity for index in indexes])
    ]
    pre = start
    while pre <= end or len(stack) > 1:
        # Close finished containers before (or after) advancing.
        while len(stack) > 1 and (pre > end or pre > stack[-1][0]):
            _closed_end, nid, fields = stack.pop()
            for i in range(k):
                enter[i](nid, fields[i])
            parent_fields = stack[-1][2]
            for i in range(k):
                parent_fields[i] = indexes[i].combine(
                    parent_fields[i], fields[i]
                )
        if pre > end:
            break
        kind = kinds[pre]
        if kind in (ELEM, DOC):
            stack.append(
                (pre + sizes[pre], nids[pre], [index.identity for index in indexes])
            )
        elif kind == TEXT:
            fields = stack[-1][2]
            for i in range(k):
                field = leaf_fields[i][pre]
                enter[i](nids[pre], field)
                fields[i] = indexes[i].combine(fields[i], field)
        elif kind == ATTR:
            # Indexed on its own value; no contribution to the parent.
            for i in range(k):
                enter[i](nids[pre], leaf_fields[i][pre])
        # COMMENT/PI: not indexed, nothing contributed.
        pre += 1
    return stack[0][2]


def _compute_fields_single(
    doc: Document,
    start: int,
    end: int,
    index: ValueIndex,
    enter,
    leaf_fields: dict[int, object],
) -> object:
    """Single-index fast path of :func:`compute_fields` (identical
    traversal, no per-index inner loops — index creation is hot).

    Returns the range's contribution (see :func:`compute_fields`).
    """
    kinds = doc.kind
    sizes = doc.size
    nids = doc.nid
    combine = index.combine
    identity = index.identity
    # [subtree_end_pre, nid, accumulator]; bottom frame is a sentinel
    # (nid None) accumulating the range's top-level contribution.
    stack: list[list] = [[end, None, identity]]
    pre = start
    while pre <= end or len(stack) > 1:
        while len(stack) > 1 and (pre > end or pre > stack[-1][0]):
            _closed_end, nid, field = stack.pop()
            enter(nid, field)
            top = stack[-1]
            top[2] = combine(top[2], field)
        if pre > end:
            break
        kind = kinds[pre]
        if kind in (ELEM, DOC):
            stack.append([pre + sizes[pre], nids[pre], identity])
        elif kind == TEXT:
            field = leaf_fields[pre]
            enter(nids[pre], field)
            top = stack[-1]
            top[2] = combine(top[2], field)
        elif kind == ATTR:
            enter(nids[pre], leaf_fields[pre])
        pre += 1
    return stack[0][2]


def build_document(doc: Document, indexes: Sequence[ValueIndex]) -> None:
    """Create all ``indexes`` over ``doc`` in a single pass (Figure 7)."""
    for index in indexes:
        index.begin_bulk()
    compute_fields(doc, 0, len(doc) - 1, indexes, bulk=True)
    for index in indexes:
        index.finish_bulk()
