"""The paper's primary contribution: generic updatable XML value indices."""

from .builder import ValueIndex, build_document, compute_fields
from .hashing import EMPTY_HASH, HashAccumulator, combine, combine_all, hash_string
from .manager import IndexManager
from .parallel import (
    build_document_parallel,
    compute_fields_parallel,
    resolve_workers,
    shutdown_pools,
    split_document,
)
from .string_index import StringIndex
from .substring_index import SubstringIndex
from .typed_index import TypedIndex
from .updater import apply_structural_change, apply_text_updates

__all__ = [
    "EMPTY_HASH",
    "HashAccumulator",
    "IndexManager",
    "StringIndex",
    "SubstringIndex",
    "TypedIndex",
    "ValueIndex",
    "apply_structural_change",
    "apply_text_updates",
    "build_document",
    "build_document_parallel",
    "combine",
    "combine_all",
    "compute_fields",
    "compute_fields_parallel",
    "hash_string",
    "resolve_workers",
    "shutdown_pools",
    "split_document",
]
