"""Vectorized FSM front-end: batch text classification kernels.

The typed-index FSM rejects the vast majority of text nodes on their
*first* illegal character (the paper: "the majority of all text nodes
... will be rejected immediately").  During index creation that
pre-filter is the hot loop — one regex probe per text node.  This
module batches it: all candidate texts are joined into one region,
decoded to a flat ``uint32`` code-point array with ``np.frombuffer``
over the UTF-32 encoding, classified against a per-DFA 128-entry
char-class table in one gather, and reduced back to a per-text
legality verdict with a prefix sum over the illegal mask.  Only the
small legal minority then pays the scalar tokenizer.

A second region kernel serves ``contains`` lookups: the candidate
texts are joined with a ``NUL`` sentinel and the needle is located
with C-level ``str.find`` hops over the joined region instead of one
Python-level ``in`` per text.

Both kernels are exact (no false negatives/positives) and degrade to
``None`` when numpy is unavailable, letting callers keep their scalar
loop.
"""

from __future__ import annotations

try:  # numpy is an accelerator, not a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

__all__ = ["HAVE_NUMPY", "legality_mask", "containing_indices"]

HAVE_NUMPY = np is not None

#: Texts below this total size are cheaper to reject one by one.
_MIN_BATCH_CHARS = 256

#: Per-DFA char-class tables, keyed by the DFA object (one per plugin).
_CLASS_TABLES: dict[int, "np.ndarray"] = {}


def _class_table(dfa) -> "np.ndarray":
    """Boolean legality table over code points 0..127 for one DFA.

    ``table[code]`` is True iff the character belongs to the DFA's
    alphabet; code points >= 128 are never legal for the shipped typed
    DFAs (digits, signs, separators — all ASCII), which the kernel
    checks separately with one comparison.
    """
    table = _CLASS_TABLES.get(id(dfa))
    if table is None:
        table = np.zeros(128, dtype=bool)
        for char in dfa.char_class:
            code = ord(char)
            if code < 128:
                table[code] = True
        _CLASS_TABLES[id(dfa)] = table
    return table


def legality_mask(plugin, texts: list[str]):
    """Per-text verdict: could this text be a legal lexical fragment?

    Returns a list of bools (True = every character is in the DFA's
    alphabet, so the scalar tokenizer must run; False = at least one
    illegal character, the fragment is REJECT without tokenizing), or
    ``None`` when numpy is unavailable or the batch is too small to
    beat the scalar pre-filter.
    """
    if np is None or not texts:
        return None
    if any(ord(char) >= 128 for char in plugin.dfa.char_class):
        return None  # non-ASCII alphabet: table shape does not apply
    lens = np.fromiter(
        (len(text) for text in texts), dtype=np.int64, count=len(texts)
    )
    total = int(lens.sum())
    if total < _MIN_BATCH_CHARS:
        return None
    codes = np.frombuffer(
        "".join(texts).encode("utf-32-le"), dtype=np.uint32
    )
    table = _class_table(plugin.dfa)
    illegal = codes >= 128
    legal_low = table[np.where(illegal, 0, codes).astype(np.int64)]
    illegal |= ~legal_low
    # Per-text any(illegal): prefix-sum the illegal mask and difference
    # it at the region boundaries.
    bounds = np.cumsum(lens)
    prefix = np.concatenate(
        ([0], np.cumsum(illegal, dtype=np.int64))
    )
    bad = prefix[bounds] - prefix[bounds - lens] > 0
    return (~bad).tolist()


def containing_indices(texts: list[str], needle: str):
    """Indices of ``texts`` whose value contains ``needle``.

    Joins the texts with a ``NUL`` sentinel and walks the matches with
    ``str.find`` (C level), mapping each match position back to its
    text with a ``searchsorted`` over the region offsets.  Returns
    ``None`` — caller falls back to the scalar loop — when numpy is
    unavailable, the needle is empty (everything matches, no scan
    needed) or the needle itself contains the sentinel.
    """
    if np is None or not needle or "\x00" in needle:
        return None
    if not texts:
        return []
    region = "\x00".join(texts)
    lens = np.fromiter(
        (len(text) for text in texts), dtype=np.int64, count=len(texts)
    )
    # starts[i] = position of texts[i] inside the region.
    starts = np.concatenate(([0], np.cumsum(lens[:-1] + 1)))
    matched = []
    position = region.find(needle)
    while position != -1:
        # The sentinel cannot occur in the needle, so a match is fully
        # inside one text.
        text_index = int(
            np.searchsorted(starts, position, side="right") - 1
        )
        matched.append(text_index)
        # Resume after this text: later matches inside it are dupes.
        end = int(starts[text_index]) + int(lens[text_index])
        position = region.find(needle, end + 1)
    return matched
