"""Parallel chunked index creation (the Figure 7 pass, split by C).

The paper's creation algorithm computes every node's field in one
depth-first pass, folding children into parents with the associative
combination function ``C`` (hash index) or the state combination table
(typed FSM index).  Associativity is exactly what makes the pass
*splittable*: partition the document's pre range into runs of complete
sibling subtrees ("chunks"), compute each chunk independently with the
unchanged serial kernel (:func:`repro.core.builder.compute_fields`),
and recover the fields of the few ancestors that span chunks (the
"spine") by folding the per-chunk contributions in document order —
the same algebra the updater already uses for ancestor recomputation.
The result is bit-for-bit identical to the serial pass; see
docs/parallel-build.md for the argument.

Two worker-pool backends are provided:

* ``"thread"`` — workers share the document and stage into private
  collectors; cheap, but Python-level work serialises on the GIL (the
  vectorised hash releases it, FSM runs do not).
* ``"process"`` — workers receive only the chunk's column slices
  (kind/size/nid plus leaf texts) and return staged ``(nid, field)``
  runs; fields (32-bit hashes, FSM fragments) pickle compactly.
  Process pools are persistent per worker count so repeated builds
  amortise fork cost.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from ..errors import IndexError_
from ..xmldb.document import ATTR, ELEM, TEXT, Document
from .builder import ValueIndex, compute_fields
from .string_index import StringIndex
from .typed_index import TypedIndex

__all__ = [
    "Chunk",
    "SplitPlan",
    "split_document",
    "compute_fields_parallel",
    "build_document_parallel",
    "resolve_workers",
    "shutdown_pools",
]

#: Chunks scheduled per worker; >1 smooths load imbalance, at the cost
#: of per-chunk dispatch overhead on the process backend.
CHUNKS_PER_WORKER = 2

#: Documents below this many rows are built serially under "auto".
AUTO_MIN_ROWS = 4096


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------

def resolve_workers(parallel: int | str | None) -> int:
    """Resolve the public ``parallel`` knob to a worker count.

    ``None`` means serial (returns 0); ``"auto"`` uses the CPUs
    available to this process; an integer is used as given (>= 1).
    """
    if parallel is None:
        return 0
    if parallel == "auto":
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    workers = int(parallel)
    if workers < 1:
        raise IndexError_(f"parallel worker count must be >= 1, got {workers}")
    return workers


# ----------------------------------------------------------------------
# Splitting
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Chunk:
    """A contiguous pre range of complete sibling subtrees.

    All top-level subtrees in the range share the same parent, a spine
    node at ``parent_pre``.
    """

    start: int
    end: int
    parent_pre: int

    @property
    def rows(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class SplitPlan:
    """A document partition: spine ancestors + independent chunks.

    ``spine`` is a root-first path of container pres (the document node
    downwards) whose subtrees span more than one chunk; every other row
    of the document belongs to exactly one chunk.
    """

    spine: tuple[int, ...]
    chunks: tuple[Chunk, ...]


def split_document(doc: Document, target: int) -> SplitPlan:
    """Partition ``doc`` into roughly ``target`` balanced chunks.

    Walks a spine from the document node, descending into the largest
    element child while its subtree is too big to be one chunk; every
    subtree hanging off the spine becomes a chunk item, and adjacent
    same-parent items are merged up to the row budget.
    """
    n = len(doc)
    sizes = doc.size
    budget = max(1, n // max(1, target))
    spine: list[int] = []
    items: list[Chunk] = []
    node = 0
    while True:
        spine.append(node)
        kids = list(doc.children_and_attributes(node))
        big = max(kids, key=lambda c: sizes[c], default=None)
        if (
            big is not None
            and doc.kind[big] == ELEM
            and sizes[big] + 1 > budget
        ):
            for child in kids:
                if child != big:
                    items.append(Chunk(child, child + sizes[child], node))
            node = big
            continue
        for child in kids:
            items.append(Chunk(child, child + sizes[child], node))
        break
    items.sort(key=lambda c: c.start)
    chunks: list[Chunk] = []
    for item in items:
        last = chunks[-1] if chunks else None
        if (
            last is not None
            and last.parent_pre == item.parent_pre
            and last.end + 1 == item.start
            and last.rows < budget
        ):
            chunks[-1] = Chunk(last.start, item.end, last.parent_pre)
        else:
            chunks.append(item)
    return SplitPlan(tuple(spine), tuple(chunks))


# ----------------------------------------------------------------------
# Chunk workers
# ----------------------------------------------------------------------

class _Collector:
    """Stands in for an index inside a chunk worker.

    Delegates the algebra (H/C or FSM/SCT) to a real index object but
    records staged entries privately, so workers never touch shared
    index state and the main thread can replay runs in serial order.
    """

    __slots__ = ("identity", "combine", "field_of_text", "field_of_texts",
                 "entries")

    def __init__(self, algebra):
        self.identity = algebra.identity
        self.combine = algebra.combine
        self.field_of_text = algebra.field_of_text
        batch = getattr(algebra, "field_of_texts", None)
        if batch is not None:
            self.field_of_texts = batch
        self.entries: list[tuple[int, object]] = []

    def stage_entry(self, nid: int, field: object) -> None:
        self.entries.append((nid, field))


class _ChunkView:
    """Document stand-in over one chunk's column slices (0-based pres).

    Carries exactly what :func:`compute_fields` reads — kind, size and
    nid columns plus the text of value leaves.  Subtree sizes are
    self-contained because chunks cover complete subtrees, and nids are
    store-global, so staged entries need no translation.
    """

    __slots__ = ("kind", "size", "nid", "_texts")

    def __init__(self, kind, size, nid, texts):
        self.kind = kind
        self.size = size
        self.nid = nid
        self._texts = texts

    def text_of(self, pre: int) -> str:
        return self._texts[pre]


def _chunk_payload(doc: Document, chunk: Chunk):
    """Column slices of one chunk, ready to ship to a worker process."""
    start, end = chunk.start, chunk.end
    kinds = doc.kind[start : end + 1]
    texts: list[str | None] = [None] * len(kinds)
    for i, kind in enumerate(kinds):
        if kind == TEXT or kind == ATTR:
            texts[i] = doc.text_of(start + i)
    return (
        kinds,
        doc.size[start : end + 1],
        doc.nid[start : end + 1],
        texts,
    )


def _spec_of(index: ValueIndex) -> tuple:
    """Picklable recipe to rebuild an index's algebra in a worker."""
    if type(index) is StringIndex:
        return ("string",)
    if type(index) is TypedIndex:
        return ("typed", index.type_name)
    raise IndexError_(
        f"process backend cannot rebuild a {type(index).__name__}; "
        "use the thread backend for custom index types"
    )


#: Per-process cache of rebuilt algebras (plugin construction is not
#: free; every chunk of every build in this worker shares them).
_ALGEBRAS: dict[tuple, object] = {}


def _algebra_for(spec: tuple):
    algebra = _ALGEBRAS.get(spec)
    if algebra is None:
        if spec[0] == "string":
            algebra = StringIndex(order=4)
        else:
            algebra = TypedIndex(spec[1], order=4)
        _ALGEBRAS[spec] = algebra
    return algebra


def _filtered_entries(algebra, entries: list) -> list:
    """Drop entries the index would not store (rejected FSM fields) —
    they are dead weight in worker results, and most typed-index
    entries are rejections (the paper's storage argument)."""
    keeps = getattr(algebra, "is_stored_field", None)
    if keeps is None:
        return entries
    return [(nid, field) for nid, field in entries if keeps(field)]


def _process_chunk(specs: tuple, payload: tuple):
    """Worker-process entry: compute one chunk from column slices."""
    kinds, sizes, nids, texts = payload
    view = _ChunkView(kinds, sizes, nids, texts)
    algebras = [_algebra_for(spec) for spec in specs]
    collectors = [_Collector(algebra) for algebra in algebras]
    contributions = compute_fields(view, 0, len(kinds) - 1, collectors, bulk=True)
    return [
        _filtered_entries(algebra, c.entries)
        for algebra, c in zip(algebras, collectors)
    ], contributions


def _thread_chunk(doc: Document, indexes: Sequence[ValueIndex], chunk: Chunk):
    """Worker-thread entry: compute one chunk over the shared document."""
    collectors = [_Collector(index) for index in indexes]
    contributions = compute_fields(
        doc, chunk.start, chunk.end, collectors, bulk=True
    )
    return [
        _filtered_entries(index, c.entries)
        for index, c in zip(indexes, collectors)
    ], contributions


# ----------------------------------------------------------------------
# Pools
# ----------------------------------------------------------------------

_PROCESS_POOLS: dict[int, ProcessPoolExecutor] = {}


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """Persistent process pool per worker count (fork cost amortised)."""
    pool = _PROCESS_POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _PROCESS_POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down all persistent worker pools (idempotent)."""
    for pool in _PROCESS_POOLS.values():
        pool.shutdown()
    _PROCESS_POOLS.clear()


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# The parallel pass
# ----------------------------------------------------------------------

def compute_fields_parallel(
    doc: Document,
    indexes: Sequence[ValueIndex],
    workers: int,
    backend: str = "process",
    bulk: bool = True,
) -> None:
    """Chunked, pooled equivalent of the whole-document Figure 7 pass.

    Splits the document at sibling boundaries, computes chunks on the
    worker pool, then replays the staged runs and the spine fields into
    the real indices in exactly the serial pass's emission order.
    """
    if backend not in ("thread", "process"):
        raise IndexError_(f"unknown parallel backend {backend!r}")
    plan = split_document(doc, max(workers * CHUNKS_PER_WORKER, 1))
    chunks = plan.chunks
    if backend == "process":
        specs = tuple(_spec_of(index) for index in indexes)
        payloads = [_chunk_payload(doc, chunk) for chunk in chunks]
        if workers <= 1 or len(chunks) <= 1:
            results = [_process_chunk(specs, payload) for payload in payloads]
        else:
            pool = _process_pool(workers)
            results = list(
                pool.map(_process_chunk, [specs] * len(payloads), payloads)
            )
    else:
        if workers <= 1 or len(chunks) <= 1:
            results = [_thread_chunk(doc, indexes, chunk) for chunk in chunks]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(lambda c: _thread_chunk(doc, indexes, c), chunks)
                )
    _replay(doc, plan, results, indexes, bulk)


def _replay(
    doc: Document,
    plan: SplitPlan,
    results: list,
    indexes: Sequence[ValueIndex],
    bulk: bool,
) -> None:
    """Fold spine fields and emit all entries in serial close order."""
    k = len(indexes)
    enter = [index.stage_entry if bulk else index.set_entry for index in indexes]
    # Spine fields, deepest first: each spine node's field is the fold
    # (in document order) of its chunk contributions and, where
    # present, its spine child's field — pure C/SCT algebra, no text.
    spine_fields: dict[int, list] = {}
    spine = plan.spine
    for depth in range(len(spine) - 1, -1, -1):
        node = spine[depth]
        units: list[tuple[int, Sequence[object]]] = [
            (chunk.start, contributions)
            for chunk, (_entries, contributions) in zip(plan.chunks, results)
            if chunk.parent_pre == node
        ]
        if depth + 1 < len(spine):
            child = spine[depth + 1]
            units.append((child, spine_fields[child]))
        units.sort(key=lambda unit: unit[0])
        fields = [index.identity for index in indexes]
        for _pos, contributions in units:
            for i in range(k):
                fields[i] = indexes[i].combine(fields[i], contributions[i])
        spine_fields[node] = fields
    # Serial emission order: a node's entry is emitted when its subtree
    # closes.  Chunks are self-contained blocks keyed by their end pre;
    # a spine node closes after every row of its subtree, deeper spine
    # nodes before shallower ones at equal end.
    events: list[tuple[int, int, int, tuple]] = [
        (chunk.end, 0, chunk.start, ("chunk", idx))
        for idx, chunk in enumerate(plan.chunks)
    ]
    events.extend(
        (node + doc.size[node], 1, -doc.level[node], ("spine", node))
        for node in spine
    )
    events.sort()
    batch_enter = [
        getattr(index, "stage_entries", None) if bulk else None
        for index in indexes
    ]
    for _end, _tie, _tie2, (what, ref) in events:
        if what == "chunk":
            entries_per_index, _contributions = results[ref]
            for i in range(k):
                batch = batch_enter[i]
                if batch is not None:
                    batch(entries_per_index[i])
                    continue
                emit = enter[i]
                for nid, field in entries_per_index[i]:
                    emit(nid, field)
        else:
            fields = spine_fields[ref]
            nid = doc.nid[ref]
            for i in range(k):
                enter[i](nid, fields[i])


def build_document_parallel(
    doc: Document,
    indexes: Sequence[ValueIndex],
    workers: int | str | None = "auto",
    backend: str = "process",
) -> None:
    """Create all ``indexes`` over ``doc`` with a pooled chunked pass.

    Drop-in parallel equivalent of
    :func:`repro.core.builder.build_document`.
    """
    resolved = resolve_workers(workers)
    for index in indexes:
        index.begin_bulk()
    compute_fields_parallel(doc, indexes, resolved, backend=backend, bulk=True)
    for index in indexes:
        index.finish_bulk()
