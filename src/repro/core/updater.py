"""Index maintenance — the skeleton algorithm of paper Figure 8.

Text-value updates re-evaluate ``H``/the FSM **only** for the updated
text nodes; every affected ancestor is then recomputed by folding the
*stored* fields of its immediate children with ``C``/the SCT — "the
hash values of all ancestors of the updated node are reconstructed by
visiting only the siblings and reading their hash values, as opposed
to reconstructing their string values".

Structural updates (subtree insertion/deletion) drop/compute fields for
the spliced rows and then run the same ancestor recomputation from the
splice parent upwards (Section 5, last paragraph).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..xmldb.document import COMMENT, ELEM, PI, TEXT, Document
from ..xmldb.store import Store, StructuralChange
from .builder import ValueIndex, compute_fields

__all__ = ["apply_text_updates", "apply_structural_change", "recompute_ancestors"]


def _recompute_node(doc: Document, pre: int, indexes: Sequence[ValueIndex]) -> None:
    """Fold the stored fields of ``pre``'s children into a new field.

    This is Figure 8's "recomputed across all its immediate children"
    (lines 14-16/19-21): one stored-field read per child, no document
    text access.
    """
    kinds = doc.kind
    nids = doc.nid
    fields = [index.identity for index in indexes]
    for child in doc.children(pre):
        kind = kinds[child]
        if kind in (ELEM, TEXT):
            child_nid = nids[child]
            for i, index in enumerate(indexes):
                fields[i] = index.combine(fields[i], index.field_of(child_nid))
    for i, index in enumerate(indexes):
        index.set_entry(nids[pre], fields[i])


def recompute_ancestors(
    store: Store,
    dirty: Iterable[tuple[Document, int]],
    indexes: Sequence[ValueIndex],
) -> int:
    """Recompute fields for a set of (document, ancestor-pre) pairs.

    Ancestors are processed deepest level first so every recomputation
    reads already-refreshed child fields.  Returns the number of nodes
    recomputed (update-cost metric for the benchmarks).
    """
    ordered = sorted(dirty, key=lambda item: item[0].level[item[1]], reverse=True)
    for doc, pre in ordered:
        _recompute_node(doc, pre, indexes)
    return len(ordered)


def _collect_ancestors(
    doc: Document, pre: int, seen: set[int], dirty: list[tuple[Document, int]]
) -> None:
    """Walk the parent chain, stopping at already-collected ancestors."""
    parent_nid = doc.parent_nid[pre]
    while parent_nid >= 0 and parent_nid not in seen:
        seen.add(parent_nid)
        parent_pre = doc.pre_of(parent_nid)
        dirty.append((doc, parent_pre))
        parent_nid = doc.parent_nid[parent_pre]


def apply_text_updates(
    store: Store,
    nids: Iterable[int],
    indexes: Sequence[ValueIndex],
) -> int:
    """Refresh all indices after text-value updates of ``nids``.

    The new values must already be in the store (see
    :meth:`repro.xmldb.store.Store.update_text`).  Returns the total
    number of index-entry recomputations (leaves + ancestors).
    """
    seen: set[int] = set()
    dirty: list[tuple[Document, int]] = []
    touched = 0
    for nid in nids:
        doc, pre = store.node(nid)
        kind = doc.kind[pre]
        if kind in (COMMENT, PI):
            continue  # not indexed
        text = doc.text_of(pre)
        for index in indexes:
            index.set_entry(nid, index.field_of_text(text))
        touched += 1
        if kind == TEXT:
            # Attribute values never influence ancestors (XDM).
            _collect_ancestors(doc, pre, seen, dirty)
    return touched + recompute_ancestors(store, dirty, indexes)


def apply_structural_change(
    store: Store,
    change: StructuralChange,
    indexes: Sequence[ValueIndex],
) -> int:
    """Refresh all indices after a subtree insertion or deletion."""
    for nid in change.removed_nids:
        for index in indexes:
            index.remove_entry(nid)
    doc = change.document
    if change.added_nids:
        # The spliced rows are contiguous and form complete subtrees.
        first = doc.pre_of(change.added_nids[0])
        last = doc.pre_of(change.added_nids[-1])
        compute_fields(doc, first, last, indexes, bulk=False)
    # Recompute the splice parent and its ancestors.
    seen: set[int] = set()
    dirty: list[tuple[Document, int]] = []
    parent_pre = doc.pre_of(change.parent_nid)
    seen.add(change.parent_nid)
    dirty.append((doc, parent_pre))
    _collect_ancestors(doc, parent_pre, seen, dirty)
    return (
        len(change.removed_nids)
        + len(change.added_nids)
        + recompute_ancestors(store, dirty, indexes)
    )
