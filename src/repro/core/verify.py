"""Database integrity verification (first-principles cross-checks).

Where :meth:`IndexManager.check_consistency` compares indices against a
fresh *rebuild* (same code path), this module re-derives every indexed
fact straight from document text — hash values via ``H`` over XDM
string values, typed states via a fresh FSM run, B-tree structure via
its own invariant checker — and reports every discrepancy instead of
stopping at the first.  This is the tool an operator runs after a
crash recovery or a suspected bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xmldb.document import ATTR, COMMENT, PI, TEXT
from .hashing import hash_string
from .manager import IndexManager

__all__ = ["VerificationReport", "verify_database"]


@dataclass
class VerificationReport:
    """Outcome of a verification pass."""

    nodes_checked: int = 0
    entries_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def _problem(self, message: str) -> None:
        self.problems.append(message)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        lines = [
            f"verification: {status} "
            f"({self.nodes_checked:,} nodes, "
            f"{self.entries_checked:,} index entries)"
        ]
        lines.extend(f"  - {p}" for p in self.problems[:50])
        if len(self.problems) > 50:
            lines.append(f"  ... and {len(self.problems) - 50} more")
        return "\n".join(lines)


def verify_database(manager: IndexManager) -> VerificationReport:
    """Re-derive all index contents from document text and compare."""
    report = VerificationReport()
    for doc in manager.store.documents.values():
        try:
            doc.check_invariants()
        except AssertionError as exc:
            report._problem(f"{doc.name}: structural invariant: {exc}")
            continue
        _verify_document(manager, doc, report)
    _verify_trees(manager, report)
    return report


def _verify_document(manager, doc, report) -> None:
    string_index = manager.string_index
    typed = list(manager.typed_indexes.items())
    substring = manager.substring_index
    for pre in range(len(doc)):
        kind = doc.kind[pre]
        nid = doc.nid[pre]
        report.nodes_checked += 1
        if kind in (COMMENT, PI):
            if string_index is not None and nid in string_index.hash_of:
                report._problem(
                    f"{doc.name}#{nid}: comment/PI must not be indexed"
                )
            continue
        value = doc.string_value(pre)
        if string_index is not None:
            stored = string_index.hash_of.get(nid)
            expected = hash_string(value)
            report.entries_checked += 1
            if stored is None:
                report._problem(f"{doc.name}#{nid}: missing hash entry")
            elif stored != expected:
                report._problem(
                    f"{doc.name}#{nid}: hash {stored:#010x} != "
                    f"H(value) {expected:#010x}"
                )
        for type_name, index in typed:
            fragment = index.plugin.fragment_of_text(value)
            stored_fragment = index.field_of(nid)
            report.entries_checked += 1
            if stored_fragment.state != fragment.state:
                report._problem(
                    f"{doc.name}#{nid}: {type_name} state "
                    f"{stored_fragment.state} != fresh {fragment.state}"
                )
                continue
            expected_value = index.plugin.cast(fragment)
            if index.value_of(nid) != expected_value:
                report._problem(
                    f"{doc.name}#{nid}: {type_name} value "
                    f"{index.value_of(nid)!r} != {expected_value!r}"
                )
        if substring is not None and kind in (TEXT, ATTR):
            text = doc.text_of(pre)
            if len(text) >= substring.q:
                candidates = substring.candidates(text[: substring.q])
                report.entries_checked += 1
                if candidates is not None and nid not in candidates:
                    report._problem(
                        f"{doc.name}#{nid}: missing from q-gram postings"
                    )


def _verify_trees(manager, report) -> None:
    if manager.string_index is not None:
        try:
            manager.string_index.tree.check_invariants()
        except AssertionError as exc:
            report._problem(f"string index B-tree: {exc}")
        tree_nids = {nid for _h, nid in manager.string_index.tree.keys()}
        map_nids = set(manager.string_index.hash_of)
        for extra in sorted(tree_nids - map_nids)[:10]:
            report._problem(f"string tree has orphan nid {extra}")
        for missing in sorted(map_nids - tree_nids)[:10]:
            report._problem(f"string tree lacks nid {missing}")
    for type_name, index in manager.typed_indexes.items():
        try:
            index.tree.check_invariants()
        except AssertionError as exc:
            report._problem(f"{type_name} index B-tree: {exc}")
        tree_nids = {nid for _v, nid in index.tree.keys()}
        value_nids = set(index._value_of)
        for extra in sorted(tree_nids - value_nids)[:10]:
            report._problem(f"{type_name} tree has orphan nid {extra}")
        for missing in sorted(value_nids - tree_nids)[:10]:
            report._problem(f"{type_name} tree lacks nid {missing}")
