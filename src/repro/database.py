"""The durable database facade: indices + persistence + WAL recovery.

:class:`Database` is the "just adopt it" entry point: open a directory,
load documents, query, update — every update is write-ahead logged, and
opening after a crash replays the log over the last checkpoint through
the ordinary index-maintenance path (which is deterministic, so
replayed structural updates recreate identical node ids).

Since the shard-per-core refactor the whole engine body lives in
:class:`repro.shard.engine.ShardEngine`; ``Database`` is the
single-shard deployment of that core — same constructor, same methods,
same on-disk layout.  A directory created by one opens under the other.
Multi-core deployments run one engine per process behind
:class:`repro.shard.coordinator.ShardCluster` instead.

Example::

    with Database("./mydb", typed=("double",)) as db:
        db.load("persons", xml)
        db.update_text(nid, "Prefect")          # logged
        hits = db.query('//person[.//age = 42]')
    # power cut here? next open() replays the log.
"""

from __future__ import annotations

from .shard.engine import RecoveryReport, ShardEngine

__all__ = ["Database", "RecoveryReport"]


class Database(ShardEngine):
    """A persistent, WAL-protected XML database with generic indices.

    The single-shard facade over :class:`~repro.shard.engine.ShardEngine`
    — see that class for the constructor arguments and method
    reference.
    """

    def __enter__(self) -> "Database":
        return self
