"""Asyncio network front-end over the concurrent engine.

:class:`DatabaseServer` multiplexes many client connections onto one
:class:`~repro.database.Database` opened with the concurrent serving
path (``concurrent=True``, normally ``group_commit=True``):

* **Reads** (``query`` / ``lookup`` / ``explain``) are dispatched to a
  bounded thread pool; each request runs inside its own snapshot-
  pinned :class:`~repro.core.concurrency.ReadView`.  A session may
  additionally *pin* a view (``view.open``): the server registers a
  long-lived :class:`~repro.core.concurrency.SessionPin` — which keeps
  the epoch's MVCC overlay versions alive without holding the latch —
  and subsequent requests carrying the view token resolve at that
  epoch.  Structural updates invalidate session views; the affected
  requests fail with ``view_invalid`` instead of serving torn data.
* **Updates** are funneled through the group-commit leader by a
  separate writer pool behind a **bounded admission queue**: when
  ``max_pending_updates`` updates are already in flight the request is
  rejected immediately with ``busy`` and a ``retry_after_ms`` hint —
  backpressure surfaces at the edge instead of as unbounded latency.
* **Graceful drain** (SIGTERM/SIGINT, or :meth:`drain`): stop
  accepting connections, reject new requests, let in-flight requests
  finish, then flush the group-commit queue, checkpoint and close the
  WAL (``Database.close``).  Every update acknowledged over the wire
  is durable across the restart.

Wire protocol: length-prefixed JSON frames (:mod:`repro.wire`);
responses are tagged with the request id, so clients may pipeline.
``docs/serving.md`` is the protocol and lifecycle spec;
``repro.bench.serve`` measures the sustained-traffic claims.
"""

from __future__ import annotations

import asyncio
import base64
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable

from . import wire
from .core.concurrency import EpochNotRetained, active_view
from .database import Database
from .errors import ReproError
from .wire import (
    E_BAD_REQUEST,
    E_BUSY,
    E_DOC_MOVED,
    E_ENGINE,
    E_INTERNAL,
    E_NO_EPOCH,
    E_NO_VIEW,
    E_SHUTTING_DOWN,
    E_UNKNOWN_OP,
    E_UNSUPPORTED_VERSION,
    E_VIEW_INVALID,
    PROTOCOL_VERSION,
)

__all__ = ["DatabaseServer", "RequestError", "ServerThread", "serve"]

#: Default hint returned with ``busy`` rejections.
RETRY_AFTER_MS = 25.0


class RequestError(Exception):
    """An error the server reports to the client and keeps serving."""

    def __init__(self, code: str, message: str, **extra):
        super().__init__(message)
        self.code = code
        self.message = message
        self.extra = extra


class _Session:
    """Per-connection state: id, pinned views, write serialization,
    and in-progress chunked document transfers (shard migration)."""

    __slots__ = ("session_id", "pins", "next_view", "write_lock",
                 "exports", "imports")

    def __init__(self, session_id: int):
        self.session_id = session_id
        self.pins: dict[int, Any] = {}
        self.next_view = 1
        self.write_lock = asyncio.Lock()
        #: document name -> full export payload (chunk-served, dropped
        #: once the last chunk is read or the connection closes).
        self.exports: dict[str, bytes] = {}
        #: document name -> accumulating import payload.
        self.imports: dict[str, bytearray] = {}


class DatabaseServer:
    """Serve one concurrent-mode :class:`Database` over TCP.

    Args:
        db: An open database with concurrency enabled
            (``concurrent=True``; ``group_commit=True`` recommended —
            concurrent writers then share fsyncs).
        host/port: Bind address (port 0 picks an ephemeral port;
            :attr:`port` holds the bound one after :meth:`start`).
        max_pending_updates: Admission-control bound on in-flight
            updates; beyond it requests fail fast with ``busy``.
        read_workers/write_workers: Thread-pool sizes for read and
            update execution.
        placement_version: The cluster layout version this shard was
            (re)started under, or ``None`` when serving stand-alone.
            Scatter requests stamped with an older version are
            rejected with retryable ``doc_moved`` instead of being
            answered from the wrong side of a migration; the
            coordinator advances it with the ``placement`` op after
            each manifest flip (docs/sharding.md).
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending_updates: int = 64,
        read_workers: int = 8,
        write_workers: int = 8,
        placement_version: int | None = None,
    ):
        if db.manager.concurrency is None:
            raise ReproError(
                "serving requires a concurrent database "
                "(Database(..., concurrent=True))"
            )
        self.db = db
        self.host = host
        self.port = port
        self._controller = db.manager.concurrency
        self._metrics = db.manager.metrics
        self._max_pending_updates = max_pending_updates
        self._read_pool = ThreadPoolExecutor(
            max_workers=read_workers, thread_name_prefix="serve-read"
        )
        self._write_pool = ThreadPoolExecutor(
            max_workers=write_workers, thread_name_prefix="serve-write"
        )
        self._pending_updates = 0
        self.placement_version = placement_version
        self._state = "new"  # new -> serving -> draining -> closed
        self._server: asyncio.base_events.Server | None = None
        self._sessions: set[_Session] = set()
        self._inflight: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._next_session = 1
        #: Exception raised while closing the database during drain
        #: (e.g. a poisoned group-commit log re-raising its crash);
        #: the WAL handle is released regardless.
        self.close_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._state = "serving"

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        if self._state == "new":
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or platform without signal support:
                # stop is driven programmatically instead.
                break
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work,
        flush group commit, checkpoint, close the WAL.

        A database whose group-commit log was poisoned by an injected
        crash raises out of ``close``; the exception is recorded on
        :attr:`close_error` (the WAL and the sockets are released
        either way, and the un-truncated WAL replays on next open).
        """
        if self._state in ("draining", "closed"):
            return
        self._state = "draining"
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight),
                                 return_exceptions=True)
        # Hang up on idle peers (replication followers tail over
        # long-lived connections); their handler loops then exit at a
        # clean frame boundary instead of being cancelled mid-read
        # when the event loop shuts down.
        for conn_writer in tuple(self._conn_writers):
            conn_writer.close()
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._write_pool, self._close_db)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self.close_error = exc
        for session in tuple(self._sessions):
            self._release_session(session)
        self._read_pool.shutdown(wait=False)
        self._write_pool.shutdown(wait=False)
        self._state = "closed"

    def _close_db(self) -> None:
        self.db.close(checkpoint=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session(self._next_session)
        self._next_session += 1
        self._sessions.add(session)
        self._conn_writers.add(writer)
        self._metrics.counter("server.connections").inc()
        try:
            while True:
                header = await reader.readexactly(4)
                length = wire.decode_header(header)
                body = await reader.readexactly(length)
                try:
                    message = json.loads(body)
                    if not isinstance(message, dict):
                        raise ValueError("frame body must be an object")
                except ValueError:
                    break  # framing violation: drop the connection
                task = asyncio.ensure_future(
                    self._serve_request(session, writer, message)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
        except (asyncio.IncompleteReadError, ConnectionError, wire.WireError):
            pass
        finally:
            self._release_session(session)
            self._sessions.discard(session)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _release_session(self, session: _Session) -> None:
        for pin in session.pins.values():
            self._controller.close_pin(pin)
        session.pins.clear()

    async def _serve_request(
        self,
        session: _Session,
        writer: asyncio.StreamWriter,
        message: dict,
    ) -> None:
        request_id = message.get("id")
        self._metrics.counter("server.requests").inc()
        try:
            op = message.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise RequestError(E_UNKNOWN_OP, f"unknown op {op!r}")
            if self._state != "serving" and op not in ("ping", "hello"):
                raise RequestError(E_SHUTTING_DOWN, "server is draining")
            result = await handler(self, session, message)
            response = wire.ok_response(request_id, result)
        except RequestError as exc:
            self._metrics.counter(f"server.errors.{exc.code}").inc()
            response = wire.error_response(
                request_id, exc.code, exc.message, **exc.extra
            )
        except EpochNotRetained as exc:
            self._metrics.counter(f"server.errors.{E_NO_EPOCH}").inc()
            response = wire.error_response(request_id, E_NO_EPOCH, str(exc))
        except ReproError as exc:
            self._metrics.counter("server.errors.engine").inc()
            response = wire.error_response(request_id, E_ENGINE, str(exc))
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            # Includes InjectedCrash/poison surfacing through an
            # update: the client sees a failure, never a false ack.
            self._metrics.counter("server.errors.internal").inc()
            response = wire.error_response(
                request_id, E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        try:
            async with session.write_lock:
                writer.write(wire.encode_frame(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Request execution helpers
    # ------------------------------------------------------------------

    async def _run_read(self, session: _Session, message: dict, fn):
        """Run ``fn`` on the read pool, inside the request's view."""
        view_id = message.get("view")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._read_pool, self._read_in_view, session, view_id, fn
        )

    def _read_in_view(self, session: _Session, view_id, fn):
        if view_id is None:
            return fn()
        pin = session.pins.get(view_id)
        if pin is None:
            raise RequestError(E_NO_VIEW, f"unknown view {view_id!r}")
        with self._controller.read_view_at(pin):
            # Checked under the shared latch: no structural writer can
            # invalidate the pin between this check and the reads.
            if not self._controller.pin_valid(pin):
                raise RequestError(
                    E_VIEW_INVALID,
                    "pinned view invalidated by a structural update; "
                    "close it and open a new one",
                )
            return fn()

    async def _run_update(self, fn):
        """Run an update on the writer pool behind admission control."""
        if self._pending_updates >= self._max_pending_updates:
            self._metrics.counter("server.busy_rejections").inc()
            raise RequestError(
                E_BUSY,
                f"update queue full ({self._max_pending_updates} in "
                "flight); retry later",
                retry_after_ms=RETRY_AFTER_MS,
            )
        self._pending_updates += 1
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._write_pool, fn)
        finally:
            self._pending_updates -= 1

    @staticmethod
    def _require(message: dict, key: str):
        if key not in message:
            raise RequestError(E_BAD_REQUEST, f"missing parameter {key!r}")
        return message[key]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    async def _op_hello(self, session, message) -> dict:
        reason = wire.check_hello(message)
        if reason is not None:
            raise RequestError(
                E_UNSUPPORTED_VERSION, reason,
                protocol=PROTOCOL_VERSION, features=list(wire.FEATURES),
            )
        return {
            "server": "repro-xml",
            "protocol": PROTOCOL_VERSION,
            "features": list(wire.FEATURES),
            "session": session.session_id,
            "epoch": self._controller.published().epoch,
            "shard": self.db.shard_id,
            "documents": sorted(self.db.store.documents),
            "placement": self.placement_version,
        }

    async def _op_ping(self, session, message) -> dict:
        return {}

    def _check_placement(self, message: dict) -> None:
        """Reject a scatter request routed under a stale cluster layout.

        The coordinator stamps scatter requests with the manifest
        version its routing decision used; when this shard has since
        been told about a newer layout (``placement`` op after a
        migration flip) the request is answered with retryable
        ``doc_moved`` — the caller re-routes against the current
        manifest.  Requests pinned to a session view skip the gate:
        a pinned view deliberately keeps answering from the placement
        it captured (the source copy is only unloaded once no view
        pins it — docs/sharding.md).
        """
        stamped = message.get("placement")
        if stamped is None or message.get("view") is not None:
            return
        current = self.placement_version
        if current is None or stamped > current:
            # The coordinator planned under a layout newer than this
            # shard has been told about (it missed the broadcast —
            # restart race, or a coordinator that died right after
            # flipping): adopt it, versions only ever grow.
            self.placement_version = stamped
            return
        if stamped < current:
            raise RequestError(
                E_DOC_MOVED,
                f"request routed under placement version {stamped}, "
                f"shard now at {current}; re-route and retry",
                placement=current,
            )

    def _documents_query(self, documents: list, fn):
        """Evaluate ``fn(document)`` per requested document, inside one
        pinned view, failing with ``doc_moved`` on any absent one.

        The explicit document list is what makes scatter queries safe
        during migration: a document mid-copy exists on *two* shards,
        and the coordinator's placement snapshot names which shard
        answers for it — so a shard must never silently answer for a
        document it merely happens to hold (double count), nor
        silently skip one it no longer holds (dropped rows).
        """
        controller = self._controller

        def run():
            out = []
            for name in documents:
                if name not in self.db.store.documents:
                    raise RequestError(
                        E_DOC_MOVED,
                        f"document {name!r} is not on this shard; "
                        "re-route and retry",
                        document=name,
                        placement=self.placement_version,
                    )
                out.append(fn(name))
            return out

        if active_view() is None:
            # One pin for the whole list — per-document evaluation
            # must not straddle epochs.
            with controller.read_view():
                return run()
        return run()

    async def _op_query(self, session, message) -> dict:
        text = self._require(message, "xpath")
        document = message.get("document")
        documents = message.get("documents")
        use_indexes = message.get("use_indexes", True)
        as_of = message.get("as_of")
        if use_indexes not in (True, False, "auto"):
            raise RequestError(
                E_BAD_REQUEST, "use_indexes must be true, false or 'auto'"
            )
        if as_of is not None and not isinstance(as_of, int):
            raise RequestError(E_BAD_REQUEST, "as_of must be an epoch int")
        if documents is not None and not isinstance(documents, list):
            raise RequestError(E_BAD_REQUEST, "documents must be a list")
        self._check_placement(message)
        if documents is not None:
            # Documents-scoped scatter shape (always rows).
            batches = await self._run_read(
                session, message,
                lambda: self._documents_query(
                    documents,
                    lambda name: self.db.query_rows(
                        text, name, use_indexes, as_of=as_of),
                ),
            )
            return {"rows": [list(row)
                             for batch in batches for row in batch]}
        if message.get("rows"):
            # Scatter-gather shape: (document, pre, nid) rows — pre
            # addresses survive re-placement, bare nids don't.  The
            # engine maps rows at the same pinned epoch it evaluates.
            rows = await self._run_read(
                session, message,
                lambda: self.db.query_rows(text, document, use_indexes,
                                           as_of=as_of),
            )
            return {"rows": [list(row) for row in rows]}
        nids = await self._run_read(
            session, message,
            lambda: self.db.query(text, document, use_indexes,
                                  as_of=as_of),
        )
        return {"nids": nids}

    async def _op_lookup(self, session, message) -> dict:
        mode = self._require(message, "mode")

        def call():
            if mode == "string":
                return list(self.db.lookup_string(
                    self._require(message, "value")))
            if mode == "typed_equal":
                return list(self.db.lookup_typed_equal(
                    message.get("type", "double"),
                    self._require(message, "value")))
            if mode == "typed_range":
                pairs = self.db.lookup_typed_range(
                    message.get("type", "double"),
                    message.get("low"), message.get("high"),
                    include_low=message.get("include_low", True),
                    include_high=message.get("include_high", True),
                )
                return [nid for _value, nid in pairs]
            if mode == "contains":
                return list(self.db.lookup_contains(
                    self._require(message, "value")))
            if mode == "regex":
                return list(self.db.lookup_regex(
                    self._require(message, "value")))
            raise RequestError(E_BAD_REQUEST, f"unknown lookup mode {mode!r}")

        nids = await self._run_read(session, message, call)
        return {"nids": nids}

    async def _op_explain(self, session, message) -> dict:
        text = self._require(message, "xpath")
        execute = bool(message.get("execute", False))

        def call():
            explanation = self.db.explain(text, execute=execute)
            return {"summary": str(explanation), "tree": explanation.tree()}

        return await self._run_read(session, message, call)

    async def _op_update(self, session, message) -> dict:
        action = self._require(message, "action")
        db = self.db
        if action == "update_text":
            nid = self._require(message, "nid")
            text = self._require(message, "text")

            def call():
                return {"recomputed": db.update_text(nid, text)}
        elif action == "insert_xml":
            nid = self._require(message, "nid")
            fragment = self._require(message, "fragment")
            before = message.get("before")

            def call():
                change = db.insert_xml(nid, fragment, before)
                return {"added": len(change.added_nids)}
        elif action == "delete_subtree":
            nid = self._require(message, "nid")

            def call():
                return {"removed": len(db.delete_subtree(nid).removed_nids)}
        elif action == "insert_attribute":
            nid = self._require(message, "nid")
            name = self._require(message, "name")
            value = self._require(message, "value")

            def call():
                change = db.insert_attribute(nid, name, value)
                return {"added": len(change.added_nids)}
        elif action == "delete_attribute":
            nid = self._require(message, "nid")

            def call():
                return {"removed": len(db.delete_attribute(nid).removed_nids)}
        elif action == "rename":
            nid = self._require(message, "nid")
            name = self._require(message, "name")

            def call():
                db.rename(nid, name)
                return {}
        else:
            raise RequestError(
                E_BAD_REQUEST, f"unknown update action {action!r}"
            )
        return await self._run_update(call)

    async def _op_load(self, session, message) -> dict:
        """Shred + index one document (a checkpoint-forcing bulk
        write — runs on the writer pool behind admission control)."""
        name = self._require(message, "name")
        xml = self._require(message, "xml")

        def call():
            doc = self.db.load(name, xml)
            return {"nodes": len(doc.nid)}

        return await self._run_update(call)

    async def _op_unload(self, session, message) -> dict:
        name = self._require(message, "name")

        def call():
            self.db.unload(name)
            return {}

        return await self._run_update(call)

    async def _op_view_open(self, session, message) -> dict:
        pin = self._controller.open_pin()
        view_id = session.next_view
        session.next_view += 1
        session.pins[view_id] = pin
        return {"view": view_id, "epoch": pin.epoch}

    async def _op_view_close(self, session, message) -> dict:
        view_id = self._require(message, "view")
        pin = session.pins.pop(view_id, None)
        if pin is None:
            raise RequestError(E_NO_VIEW, f"unknown view {view_id!r}")
        self._controller.close_pin(pin)
        return {}

    async def _op_metrics(self, session, message) -> dict:
        return {"metrics": self.db.metrics()}

    async def _op_checkpoint(self, session, message) -> dict:
        await self._run_update(self.db.checkpoint)
        return {"epoch": self.db.checkpoint_epoch}

    async def _op_epochs(self, session, message) -> dict:
        """The retained time-travel window (docs/replication.md)."""
        return {
            "epochs": self.db.retained_epochs(),
            "current": self._controller.published().epoch,
        }

    # -- elasticity (shard migration; see docs/sharding.md) --------------

    async def _op_placement(self, session, message) -> dict:
        """Advance this shard's cluster layout version (manifest flip).

        Monotonic: a late-arriving older stamp never rolls the shard
        back behind a flip it has already been told about.
        """
        version = int(self._require(message, "version"))
        previous = self.placement_version
        if previous is None or version > previous:
            self.placement_version = version
        return {"placement": self.placement_version, "previous": previous}

    async def _op_doc_export(self, session, message) -> dict:
        """Chunked read of one document's snapshot encoding.

        ``offset == 0`` captures (and caches on the session) a fresh
        consistent export; later offsets serve from that capture, so
        one transfer never mixes two states of the document.  The
        cache entry drops with the final chunk.
        """
        name = self._require(message, "name")
        offset = int(message.get("offset", 0))
        length = int(message.get("length", 4 << 20))
        if offset < 0 or length <= 0:
            raise RequestError(E_BAD_REQUEST, "bad offset/length")

        def call():
            if offset == 0:
                if name not in self.db.store.documents:
                    raise RequestError(
                        E_DOC_MOVED,
                        f"document {name!r} is not on this shard",
                        document=name,
                        placement=self.placement_version,
                    )
                session.exports[name] = self.db.export_document(name)
            payload = session.exports.get(name)
            if payload is None:
                raise RequestError(
                    E_BAD_REQUEST,
                    f"no export in progress for {name!r} "
                    "(chunks must start at offset 0)",
                )
            chunk = payload[offset:offset + length]
            eof = offset + len(chunk) >= len(payload)
            if eof:
                session.exports.pop(name, None)
            return {
                "data": base64.b64encode(chunk).decode("ascii"),
                "eof": eof,
                "size": len(payload),
            }

        return await self._run_read(session, message, call)

    async def _op_doc_import(self, session, message) -> dict:
        """Chunked write of a document exported from another shard.

        Chunks accumulate on the session; the ``eof`` chunk adopts the
        document (foreign nids remapped, indexes rebuilt, checkpoint)
        on the writer pool like any other bulk write.
        """
        name = self._require(message, "name")
        data = base64.b64decode(self._require(message, "data"))
        offset = int(message.get("offset", 0))
        buffer = session.imports.setdefault(name, bytearray())
        if offset != len(buffer):
            session.imports.pop(name, None)
            raise RequestError(
                E_BAD_REQUEST,
                f"import chunk at offset {offset}, expected {len(buffer)}",
            )
        buffer.extend(data)
        if not message.get("eof"):
            return {"received": len(buffer)}
        payload = bytes(session.imports.pop(name))

        def call():
            doc = self.db.import_document(name, payload)
            return {"received": len(payload), "nodes": len(doc.nid)}

        return await self._run_update(call)

    async def _op_doc_stats(self, session, message) -> dict:
        """Per-document placement metrics (rebalance policy inputs)."""
        return await self._run_read(
            session, message, lambda: {"documents": self.db.document_stats()}
        )

    # -- replication (primary side; see repro.repl.primary) -------------

    async def _op_repl_manifest(self, session, message) -> dict:
        from .repl import primary as repl_primary

        return await self._run_read(
            session, message, lambda: repl_primary.manifest_info(self.db)
        )

    async def _op_repl_fetch(self, session, message) -> dict:
        from .repl import primary as repl_primary

        name = self._require(message, "name")
        offset = int(message.get("offset", 0))
        length = int(message.get("length", repl_primary.DEFAULT_CHUNK))

        def call():
            try:
                return repl_primary.fetch_chunk(self.db, name, offset,
                                                length)
            except (ValueError, FileNotFoundError) as exc:
                raise RequestError(E_BAD_REQUEST, str(exc)) from exc

        return await self._run_read(session, message, call)

    async def _op_repl_wal(self, session, message) -> dict:
        from .repl import primary as repl_primary

        epoch = int(self._require(message, "epoch"))
        offset = int(self._require(message, "offset"))
        max_bytes = int(
            message.get("max_bytes", repl_primary.DEFAULT_CHUNK)
        )
        return await self._run_read(
            session, message,
            lambda: repl_primary.wal_chunk(self.db, epoch, offset,
                                           max_bytes),
        )

    _OPS: dict[str, Callable[..., Awaitable[dict]]] = {
        "hello": _op_hello,
        "ping": _op_ping,
        "query": _op_query,
        "lookup": _op_lookup,
        "explain": _op_explain,
        "update": _op_update,
        "load": _op_load,
        "unload": _op_unload,
        "view.open": _op_view_open,
        "view.close": _op_view_close,
        "metrics": _op_metrics,
        "checkpoint": _op_checkpoint,
        "epochs": _op_epochs,
        "placement": _op_placement,
        "doc.export": _op_doc_export,
        "doc.import": _op_doc_import,
        "doc.stats": _op_doc_stats,
        "repl.manifest": _op_repl_manifest,
        "repl.fetch": _op_repl_fetch,
        "repl.wal": _op_repl_wal,
    }


class ServerThread:
    """Run a :class:`DatabaseServer` on a background thread.

    Test/bench support: owns a private event loop on a daemon thread,
    exposes the bound address after :meth:`start`, and :meth:`stop`
    triggers the graceful drain from any thread.  ``server_cls``
    swaps in a :class:`DatabaseServer` subclass (the replication
    follower proxies update ops through one).
    """

    def __init__(self, db: Database, server_cls=None, **kwargs):
        self.server = (server_cls or DatabaseServer)(db, **kwargs)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self.error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start")
        if self.error is not None:
            raise RuntimeError(f"server failed to start: {self.error!r}")
        return self.server.host, self.server.port

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - defensive
            self.error = exc
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        finally:
            self._ready.set()
        await self.server.serve_until(self._stop)

    def stop(self, timeout: float = 60.0) -> None:
        """Trigger the graceful drain and wait for the thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not drain in time")


async def serve(db: Database, host: str, port: int, **kwargs) -> None:
    """CLI entry: serve until SIGTERM/SIGINT, then drain."""
    server = DatabaseServer(db, host=host, port=port, **kwargs)
    await server.start()
    print(f"serving {db.path!r} on {server.host}:{server.port} "
          f"(protocol v{PROTOCOL_VERSION}; SIGTERM drains)")
    await server.serve_until(asyncio.Event())
    if server.close_error is not None:
        raise server.close_error
