"""Exception hierarchy for the ``repro`` library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "XmlSyntaxError",
    "DocumentError",
    "IndexError_",
    "QuerySyntaxError",
    "QueryEvaluationError",
    "TransactionConflict",
    "TransactionStateError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XmlSyntaxError(ReproError):
    """Raised by the XML parser on malformed input.

    Carries the byte/character ``position`` and 1-based ``line`` of the
    offending input when known.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1):
        detail = message
        if line >= 0:
            detail = f"{message} (line {line})"
        elif position >= 0:
            detail = f"{message} (offset {position})"
        super().__init__(detail)
        self.position = position
        self.line = line


class DocumentError(ReproError):
    """Raised on invalid document/store operations (bad node id, etc.)."""


class IndexError_(ReproError):
    """Raised on invalid index operations (name clashes, missing index)."""


class QuerySyntaxError(ReproError):
    """Raised by the XPath-subset parser on malformed queries."""


class QueryEvaluationError(ReproError):
    """Raised when a syntactically valid query cannot be evaluated."""


class TransactionConflict(ReproError):
    """Raised at commit when a transaction lost a first-committer race."""


class TransactionStateError(ReproError):
    """Raised when a transaction is used after commit/abort."""
