"""B+tree substrate shared by the string and typed value indices."""

from .bplus import BPlusTree

__all__ = ["BPlusTree"]
