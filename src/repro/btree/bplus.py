"""A from-scratch in-memory B+tree with copy-on-write updates.

Both paper indices sit on B-tree structures: "a (B-tree) index,
constructed on the hash values" (Section 3) and "a clustered (b-tree)
index is built on top of the typed values" (Section 4).  This module
provides the shared substrate: an order-configurable B+tree with
point/range lookups, bulk loading for index creation, and a modelled
on-disk byte size for the storage experiments.

**Concurrency model.**  Every mutation (``insert``/``delete``) is
*path-copying*: the nodes along the root-to-leaf descent are cloned,
the clones are modified, and the new root is installed with a single
reference assignment at the very end.  Nodes reachable from a
previously published root are never modified in place, so any reader
that captured the root — every read method captures it once per call,
and :meth:`snapshot` pins it explicitly — iterates an immutable tree.
A cursor can therefore never skip or double-yield keys because of a
concurrent leaf split; it simply sees the tree as of the moment the
iterator was created (see ``docs/concurrency.md``).

Keys must be mutually comparable; entries are unique by key.  Indices
that need duplicate logical keys (many nodes per hash value) append the
node id to the key tuple, which is also how the paper lays out its
``[value, state, node id]`` tuples.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator

__all__ = ["BPlusTree", "TreeSnapshot"]


class _Leaf:
    __slots__ = ("keys", "values")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest.
        self.keys: list[Any] = []
        self.children: list[Any] = []


def _clone(node: _Leaf | _Inner) -> _Leaf | _Inner:
    """Shallow-copy one node (the unit of copy-on-write)."""
    if isinstance(node, _Leaf):
        copy = _Leaf()
        copy.keys = node.keys[:]
        copy.values = node.values[:]
        return copy
    copy = _Inner()
    copy.keys = node.keys[:]
    copy.children = node.children[:]
    return copy


# ---------------------------------------------------------------------------
# Root-based read algorithms (shared by the live tree and snapshots)
# ---------------------------------------------------------------------------


def _find_in(root: _Leaf | _Inner, key: Any) -> tuple[_Leaf, int]:
    """Descend from ``root`` to the leaf that should hold ``key``."""
    node = root
    while isinstance(node, _Inner):
        idx = bisect.bisect_right(node.keys, key)
        node = node.children[idx]
    return node, bisect.bisect_left(node.keys, key)


def _iter_items(root: _Leaf | _Inner) -> Iterator[tuple[Any, Any]]:
    """All entries under ``root`` in ascending key order."""
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, _Inner):
            stack.extend(reversed(node.children))  # leftmost popped first
        else:
            yield from zip(node.keys, node.values)


def _iter_items_reversed(root: _Leaf | _Inner) -> Iterator[tuple[Any, Any]]:
    """All entries under ``root`` in descending key order."""
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, _Inner):
            stack.extend(node.children)  # rightmost popped first
        else:
            yield from zip(reversed(node.keys), reversed(node.values))


def _iter_range(
    root: _Leaf | _Inner,
    low: Any,
    high: Any,
    include_low: bool,
    include_high: bool,
) -> Iterator[tuple[Any, Any]]:
    """Entries under ``root`` with ``low <= key <= high`` (bounds
    optional, strictness per the include flags)."""
    # Descend to the leaf holding ``low``, stacking the right-sibling
    # subtrees of the descent path (deepest on top, so they pop in
    # ascending key order).
    stack: list[Any] = []
    if low is None:
        leaf, idx = root, 0
        while isinstance(leaf, _Inner):
            stack.extend(reversed(leaf.children[1:]))
            leaf = leaf.children[0]
    else:
        node = root
        while isinstance(node, _Inner):
            child = bisect.bisect_right(node.keys, low)
            stack.extend(reversed(node.children[child + 1 :]))
            node = node.children[child]
        leaf = node
        idx = bisect.bisect_left(leaf.keys, low)
        if not include_low:
            while idx < len(leaf.keys) and leaf.keys[idx] == low:
                idx += 1

    keys = leaf.keys
    for i in range(idx, len(keys)):
        key = keys[i]
        if high is not None:
            if key > high or (not include_high and key == high):
                return
        yield key, leaf.values[i]
    while stack:
        node = stack.pop()
        if isinstance(node, _Inner):
            stack.extend(reversed(node.children))
            continue
        for i, key in enumerate(node.keys):
            if high is not None:
                if key > high or (not include_high and key == high):
                    return
            yield key, node.values[i]


def _collect_range_keys(
    root: _Leaf | _Inner,
    low: Any,
    high: Any,
    include_low: bool,
    include_high: bool,
) -> list[Any]:
    """Keys with ``low <= key <= high`` as one list, built from
    C-level leaf slices instead of a per-entry generator chain.

    This is the batch executor's index-scan primitive: for wide range
    predicates the per-entry frame switches of :func:`_iter_range`
    dominate the whole lookup, while slicing each leaf's sorted key
    list costs one ``bisect`` per boundary leaf and one ``extend`` per
    leaf in between.
    """
    out: list[Any] = []
    stack: list[Any] = []
    if low is None:
        leaf: Any = root
        while isinstance(leaf, _Inner):
            stack.extend(reversed(leaf.children[1:]))
            leaf = leaf.children[0]
        idx = 0
    else:
        node = root
        while isinstance(node, _Inner):
            child = bisect.bisect_right(node.keys, low)
            stack.extend(reversed(node.children[child + 1 :]))
            node = node.children[child]
        leaf = node
        if include_low:
            idx = bisect.bisect_left(leaf.keys, low)
        else:
            idx = bisect.bisect_right(leaf.keys, low)
    while True:
        keys = leaf.keys
        if high is None:
            stop = len(keys)
        elif include_high:
            stop = bisect.bisect_right(keys, high, idx)
        else:
            stop = bisect.bisect_left(keys, high, idx)
        out.extend(keys[idx:] if stop == len(keys) else keys[idx:stop])
        if stop < len(keys):
            return out
        idx = 0
        leaf = None
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                stack.extend(reversed(node.children))
                continue
            leaf = node
            break
        if leaf is None:
            return out


class TreeSnapshot:
    """An immutable point-in-time view of a :class:`BPlusTree`.

    Holds the root published at capture time; later mutations of the
    live tree build fresh nodes and never touch this root, so every
    read — point, range, full scan — is consistent with the capture.
    """

    __slots__ = ("_root", "_size", "_height")

    def __init__(self, root: _Leaf | _Inner, size: int, height: int):
        self._root = root
        self._size = size
        self._height = height

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def __contains__(self, key: Any) -> bool:
        leaf, idx = _find_in(self._root, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def get(self, key: Any, default: Any = None) -> Any:
        leaf, idx = _find_in(self._root, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def items(self) -> Iterator[tuple[Any, Any]]:
        return _iter_items(self._root)

    def keys(self) -> Iterator[Any]:
        for key, _value in _iter_items(self._root):
            yield key

    def items_reversed(self) -> Iterator[tuple[Any, Any]]:
        return _iter_items_reversed(self._root)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        return _iter_range(self._root, low, high, include_low, include_high)

    def range_keys(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[Any]:
        """Batched :meth:`range` over keys only (leaf-slice collection;
        see :func:`_collect_range_keys`)."""
        return _collect_range_keys(
            self._root, low, high, include_low, include_high
        )


class BPlusTree:
    """An in-memory B+tree map with copy-on-write mutations.

    Args:
        order: Maximum number of keys per node (≥ 3).
        key_bytes: Modelled stored size of one key, for
            :meth:`byte_size`.
        value_bytes: Modelled stored size of one value; may also be a
            callable ``value -> bytes`` for variable-size payloads.
    """

    def __init__(
        self,
        order: int = 64,
        key_bytes: int = 8,
        value_bytes: int | Callable[[Any], int] = 0,
    ):
        if order < 3:
            raise ValueError("order must be at least 3")
        self._order = order
        self._key_bytes = key_bytes
        self._value_bytes = value_bytes
        self._root: _Leaf | _Inner = _Leaf()
        self._size = 0
        self._height = 1
        # (root, size, height) swapped as one tuple at every
        # publication point, so snapshot() never pairs an old root with
        # a new size/height even when called off the writer lock.
        self._published: tuple[_Leaf | _Inner, int, int] = (self._root, 0, 1)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        leaf, idx = _find_in(self._root, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup."""
        leaf, idx = _find_in(self._root, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    @property
    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        return self._height

    def snapshot(self) -> TreeSnapshot:
        """Pin the current root as an immutable :class:`TreeSnapshot`.

        O(1): no copying happens at capture time; copy-on-write happens
        on the *writer's* side, one path per mutation.  Reads the
        single published (root, size, height) tuple, so the triple is
        always mutually consistent even off the writer lock.
        """
        root, size, height = self._published
        return TreeSnapshot(root, size, height)

    def _publish(self, root: _Leaf | _Inner) -> None:
        """Install ``root`` and its consistent (size, height) triple."""
        self._root = root
        self._published = (root, self._size, self._height)

    # ------------------------------------------------------------------
    # Insertion (path-copying)
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> bool:
        """Insert ``key``; returns False (and overwrites) if present."""
        new_root: _Leaf | _Inner = _clone(self._root)
        path: list[tuple[_Inner, int]] = []
        node = new_root
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            child = _clone(node.children[idx])
            node.children[idx] = child
            path.append((node, idx))
            node = child
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            self._publish(new_root)
            return False
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._size += 1
        if len(node.keys) > self._order:
            new_root = self._split(node, path, new_root)
        self._publish(new_root)  # publication point
        return True

    def _split(
        self,
        node: _Leaf | _Inner,
        path: list[tuple[_Inner, int]],
        root: _Leaf | _Inner,
    ) -> _Leaf | _Inner:
        """Split an over-full (already cloned) node; returns the root
        of the new version (a fresh one when the split reaches it)."""
        while True:
            mid = len(node.keys) // 2
            if isinstance(node, _Leaf):
                sibling: _Leaf | _Inner = _Leaf()
                sibling.keys = node.keys[mid:]
                sibling.values = node.values[mid:]
                del node.keys[mid:]
                del node.values[mid:]
                separator = sibling.keys[0]
            else:
                sibling = _Inner()
                separator = node.keys[mid]
                sibling.keys = node.keys[mid + 1 :]
                sibling.children = node.children[mid + 1 :]
                del node.keys[mid:]
                del node.children[mid + 1 :]
            if path:
                parent, idx = path.pop()
                parent.keys.insert(idx, separator)
                parent.children.insert(idx + 1, sibling)
                if len(parent.keys) <= self._order:
                    return root
                node = parent
                continue
            new_root = _Inner()
            new_root.keys = [separator]
            new_root.children = [node, sibling]
            self._height += 1
            return new_root

    # ------------------------------------------------------------------
    # Deletion (path-copying)
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if it was absent.

        Uses lazy deletion for structure (nodes may underflow; empty
        leaves are unlinked) — standard for in-memory B+trees where
        rebalance cost is not repaid, and irrelevant to the modelled
        storage size which counts entries.
        """
        new_root: _Leaf | _Inner = _clone(self._root)
        path: list[tuple[_Inner, int]] = []
        node = new_root
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            child = _clone(node.children[idx])
            node.children[idx] = child
            path.append((node, idx))
            node = child
        idx = bisect.bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            return False  # absent: the live root stays published
        del node.keys[idx]
        del node.values[idx]
        self._size -= 1
        if not node.keys and path:
            self._drop_empty_leaf(path)
            new_root = self._collapse(new_root)
        self._publish(new_root)  # publication point
        return True

    def _drop_empty_leaf(self, path: list[tuple[_Inner, int]]) -> None:
        """Remove an emptied leaf from its (cloned) ancestors,
        propagating removal of inner nodes that become childless."""
        for parent, idx in reversed(path):
            del parent.children[idx]
            if parent.keys:
                del parent.keys[idx - 1 if idx > 0 else 0]
            if parent.children:
                break

    def _collapse(self, root: _Leaf | _Inner) -> _Leaf | _Inner:
        """Shed single-child and childless root levels."""
        while isinstance(root, _Inner) and len(root.children) == 1:
            root = root.children[0]
            self._height -= 1
        if isinstance(root, _Inner) and not root.children:
            root = _Leaf()
            self._height = 1
        return root

    def remove_many(self, keys: Iterable[Any]) -> int:
        """Remove many keys at once; returns the number removed.

        For small batches this loops :meth:`delete`; past ~1/4 of the
        tree it filters a full scan once and rebuilds by bulk load —
        O(n) instead of O(m log n), the difference between unloading a
        document per-entry and in one pass.
        """
        drop = keys if isinstance(keys, set) else set(keys)
        if not drop or self._size == 0:
            return 0
        if len(drop) * 4 < self._size:
            removed = 0
            for key in drop:
                if self.delete(key):
                    removed += 1
            return removed
        survivors = [item for item in self.items() if item[0] not in drop]
        removed = self._size - len(survivors)
        if removed:
            self.bulk_load(survivors)
        return removed

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order, as of the call."""
        return _iter_items(self._root)

    def keys(self) -> Iterator[Any]:
        for key, _value in _iter_items(self._root):
            yield key

    def items_reversed(self) -> Iterator[tuple[Any, Any]]:
        """All entries in descending key order, as of the call."""
        return _iter_items_reversed(self._root)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Entries with ``low <= key <= high`` (bounds optional).

        ``include_low``/``include_high`` toggle bound strictness, giving
        the four interval kinds range predicates need.  The cursor runs
        over the root captured at call time: concurrent copy-on-write
        mutations never disturb it.
        """
        return _iter_range(self._root, low, high, include_low, include_high)

    def range_keys(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[Any]:
        """Batched :meth:`range` over keys only (leaf-slice collection
        against the root captured at call time; see
        :func:`_collect_range_keys`)."""
        return _collect_range_keys(
            self._root, low, high, include_low, include_high
        )

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    def bulk_load(self, entries: Iterable[tuple[Any, Any]]) -> None:
        """Replace the tree contents from key-sorted unique ``entries``.

        Builds packed leaves bottom-up — this is what index *creation*
        uses (paper Figure 7 produces all entries in one pass; sorting
        them and packing is the classical bulk build).  The new root is
        installed only once fully built, so concurrent snapshot readers
        see either the old contents or the new, never a mix.
        """
        fill = max(2, (self._order * 3) // 4)
        leaves: list[_Leaf] = []
        current = _Leaf()
        count = 0
        previous_key = None
        for key, value in entries:
            if previous_key is not None and key <= previous_key:
                raise ValueError("bulk_load requires strictly sorted keys")
            previous_key = key
            if len(current.keys) >= fill:
                leaves.append(current)
                current = _Leaf()
            current.keys.append(key)
            current.values.append(value)
            count += 1
        leaves.append(current)
        # Merge a trailing runt into its left sibling.
        if len(leaves) > 1 and len(leaves[-1].keys) < 2:
            runt = leaves.pop()
            leaves[-1].keys.extend(runt.keys)
            leaves[-1].values.extend(runt.values)
        height = 1
        level: list[Any] = leaves
        separators = [leaf.keys[0] for leaf in leaves[1:]]
        while len(level) > 1:
            parents: list[_Inner] = []
            parent_separators: list[Any] = []
            i = 0
            while i < len(level):
                inner = _Inner()
                take = min(fill + 1, len(level) - i)
                if len(level) - (i + take) == 1:
                    take -= 1  # never leave a single orphan child
                inner.children = level[i : i + take]
                inner.keys = separators[i : i + take - 1]
                if i + take < len(level):
                    parent_separators.append(separators[i + take - 1])
                parents.append(inner)
                i += take
            level = parents
            separators = parent_separators
            height += 1
        self._size = count
        self._height = height
        self._publish(level[0])  # publication point

    # ------------------------------------------------------------------
    # Storage model
    # ------------------------------------------------------------------

    def byte_size(self) -> int:
        """Modelled on-disk size in bytes.

        Leaf entries cost key + value bytes; inner entries cost key +
        4-byte child pointers.  This mirrors how the paper accounts
        index storage (it reports index size relative to database size,
        both from the same storage manager).
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                total += len(node.keys) * self._key_bytes
                total += len(node.children) * 4
                stack.extend(node.children)
            else:
                total += len(node.keys) * self._key_bytes
                if callable(self._value_bytes):
                    total += sum(self._value_bytes(v) for v in node.values)
                else:
                    total += len(node.keys) * self._value_bytes
        return total

    def inner_byte_size(self) -> int:
        """Modelled bytes of the inner (non-leaf) levels only.

        Used where leaf entries are accounted separately (e.g. the
        string index counts its hash column once; the tree adds only
        navigation overhead on top).
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                total += len(node.keys) * self._key_bytes
                total += len(node.children) * 4
                stack.extend(node.children)
        return total

    def check_invariants(self) -> None:
        """Validate structural invariants (test support).

        Checks sorted keys, key/child arity, full-scan completeness and
        the separator property on every path.
        """
        entries = list(self.items())
        keys = [k for k, _ in entries]
        assert keys == sorted(keys), "scan out of order"
        assert len(set(keys)) == len(keys), "duplicate keys"
        assert len(keys) == self._size, "size counter drift"

        def walk(node, low, high, depth):
            if isinstance(node, _Inner):
                assert len(node.children) == len(node.keys) + 1
                assert node.keys == sorted(node.keys)
                bounds = [low, *node.keys, high]
                depths = set()
                for i, child in enumerate(node.children):
                    depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
                assert len(depths) == 1, "leaves at unequal depth"
                return depths.pop()
            assert node.keys == sorted(node.keys)
            for key in node.keys:
                if low is not None:
                    assert key >= low
                if high is not None:
                    assert key < high
            return depth

        leaf_depth = walk(self._root, None, None, 1)
        assert leaf_depth == self._height, "height counter drift"
