"""A from-scratch in-memory B+tree.

Both paper indices sit on B-tree structures: "a (B-tree) index,
constructed on the hash values" (Section 3) and "a clustered (b-tree)
index is built on top of the typed values" (Section 4).  This module
provides the shared substrate: an order-configurable B+tree with
chained leaves, point/range lookups, bulk loading for index creation,
and a modelled on-disk byte size for the storage experiments.

Keys must be mutually comparable; entries are unique by key.  Indices
that need duplicate logical keys (many nodes per hash value) append the
node id to the key tuple, which is also how the paper lays out its
``[value, state, node id]`` tuples.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator

__all__ = ["BPlusTree"]


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest.
        self.keys: list[Any] = []
        self.children: list[Any] = []


class BPlusTree:
    """An in-memory B+tree map.

    Args:
        order: Maximum number of keys per node (≥ 3).
        key_bytes: Modelled stored size of one key, for
            :meth:`byte_size`.
        value_bytes: Modelled stored size of one value; may also be a
            callable ``value -> bytes`` for variable-size payloads.
    """

    def __init__(
        self,
        order: int = 64,
        key_bytes: int = 8,
        value_bytes: int | Callable[[Any], int] = 0,
    ):
        if order < 3:
            raise ValueError("order must be at least 3")
        self._order = order
        self._key_bytes = key_bytes
        self._value_bytes = value_bytes
        self._root: _Leaf | _Inner = _Leaf()
        self._first_leaf: _Leaf = self._root
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        leaf, idx = self._find(key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup."""
        leaf, idx = self._find(key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    @property
    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        return self._height

    # ------------------------------------------------------------------
    # Search helpers
    # ------------------------------------------------------------------

    def _find(self, key: Any) -> tuple[_Leaf, int]:
        """Descend to the leaf that should hold ``key``."""
        node = self._root
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node, bisect.bisect_left(node.keys, key)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> bool:
        """Insert ``key``; returns False (and overwrites) if present."""
        path: list[tuple[_Inner, int]] = []
        node = self._root
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return False
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._size += 1
        if len(node.keys) > self._order:
            self._split(node, path)
        return True

    def _split(self, node: _Leaf | _Inner, path: list[tuple[_Inner, int]]) -> None:
        mid = len(node.keys) // 2
        if isinstance(node, _Leaf):
            sibling = _Leaf()
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            del node.keys[mid:]
            del node.values[mid:]
            sibling.next = node.next
            node.next = sibling
            separator = sibling.keys[0]
        else:
            sibling = _Inner()
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            del node.keys[mid:]
            del node.children[mid + 1 :]
        if path:
            parent, idx = path.pop()
            parent.keys.insert(idx, separator)
            parent.children.insert(idx + 1, sibling)
            if len(parent.keys) > self._order:
                self._split(parent, path)
        else:
            root = _Inner()
            root.keys = [separator]
            root.children = [node, sibling]
            self._root = root
            self._height += 1

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if it was absent.

        Uses lazy deletion for structure (nodes may underflow; empty
        leaves are unlinked) — standard for in-memory B+trees where
        rebalance cost is not repaid, and irrelevant to the modelled
        storage size which counts entries.
        """
        path: list[tuple[_Inner, int]] = []
        node = self._root
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            return False
        del node.keys[idx]
        del node.values[idx]
        self._size -= 1
        if not node.keys and path:
            self._unlink_empty_leaf(node, path)
        return True

    def _unlink_empty_leaf(self, leaf: _Leaf, path: list[tuple[_Inner, int]]) -> None:
        # Fix the leaf chain: find the left neighbour (scan from the
        # first leaf; amortised fine for an in-memory tree).
        if leaf is self._first_leaf:
            if leaf.next is None:
                # Tree is now completely empty.
                self._first_leaf = leaf
                self._root = leaf
                self._height = 1
                return
            self._first_leaf = leaf.next
        else:
            prev = self._first_leaf
            while prev.next is not leaf:
                prev = prev.next
            prev.next = leaf.next
        # Remove the leaf from its parent; propagate removal of inner
        # nodes that become childless.
        for parent, idx in reversed(path):
            del parent.children[idx]
            if parent.keys:
                del parent.keys[idx - 1 if idx > 0 else 0]
            if parent.children:
                break
        while isinstance(self._root, _Inner) and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1

    def remove_many(self, keys: Iterable[Any]) -> int:
        """Remove many keys at once; returns the number removed.

        For small batches this loops :meth:`delete`; past ~1/4 of the
        tree it filters the leaf chain once and rebuilds by bulk load —
        O(n) instead of O(m log n), the difference between unloading a
        document per-entry and in one pass.
        """
        drop = keys if isinstance(keys, set) else set(keys)
        if not drop or self._size == 0:
            return 0
        if len(drop) * 4 < self._size:
            removed = 0
            for key in drop:
                if self.delete(key):
                    removed += 1
            return removed
        survivors = [item for item in self.items() if item[0] not in drop]
        removed = self._size - len(survivors)
        if removed:
            self.bulk_load(survivors)
        return removed

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order."""
        leaf: _Leaf | None = self._first_leaf
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def items_reversed(self) -> Iterator[tuple[Any, Any]]:
        """All entries in descending key order.

        Leaves are chained forward only, so this walks the tree
        right-to-left with an explicit stack — O(1) memory per level.
        """
        stack: list[Any] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                stack.extend(node.children)  # leftmost ends up deepest
            else:
                yield from zip(reversed(node.keys), reversed(node.values))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Entries with ``low <= key <= high`` (bounds optional).

        ``include_low``/``include_high`` toggle bound strictness, giving
        the four interval kinds range predicates need.
        """
        if low is None:
            leaf, idx = self._first_leaf, 0
        else:
            leaf, idx = self._find(low)
            if not include_low:
                while idx < len(leaf.keys) and leaf.keys[idx] == low:
                    idx += 1
        current: _Leaf | None = leaf
        while current is not None:
            keys = current.keys
            for i in range(idx, len(keys)):
                key = keys[i]
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                yield key, current.values[i]
            idx = 0
            current = current.next

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    def bulk_load(self, entries: Iterable[tuple[Any, Any]]) -> None:
        """Replace the tree contents from key-sorted unique ``entries``.

        Builds packed leaves bottom-up — this is what index *creation*
        uses (paper Figure 7 produces all entries in one pass; sorting
        them and packing is the classical bulk build).
        """
        fill = max(2, (self._order * 3) // 4)
        leaves: list[_Leaf] = []
        current = _Leaf()
        count = 0
        previous_key = None
        for key, value in entries:
            if previous_key is not None and key <= previous_key:
                raise ValueError("bulk_load requires strictly sorted keys")
            previous_key = key
            if len(current.keys) >= fill:
                leaves.append(current)
                nxt = _Leaf()
                current.next = nxt
                current = nxt
            current.keys.append(key)
            current.values.append(value)
            count += 1
        leaves.append(current)
        # Merge a trailing runt into its left sibling.
        if len(leaves) > 1 and len(leaves[-1].keys) < 2:
            runt = leaves.pop()
            leaves[-1].keys.extend(runt.keys)
            leaves[-1].values.extend(runt.values)
            leaves[-1].next = None
        self._first_leaf = leaves[0]
        self._size = count
        self._height = 1
        level: list[Any] = leaves
        separators = [leaf.keys[0] for leaf in leaves[1:]]
        while len(level) > 1:
            parents: list[_Inner] = []
            parent_separators: list[Any] = []
            i = 0
            while i < len(level):
                inner = _Inner()
                take = min(fill + 1, len(level) - i)
                if len(level) - (i + take) == 1:
                    take -= 1  # never leave a single orphan child
                inner.children = level[i : i + take]
                inner.keys = separators[i : i + take - 1]
                if i + take < len(level):
                    parent_separators.append(separators[i + take - 1])
                parents.append(inner)
                i += take
            level = parents
            separators = parent_separators
            self._height += 1
        self._root = level[0]

    # ------------------------------------------------------------------
    # Storage model
    # ------------------------------------------------------------------

    def byte_size(self) -> int:
        """Modelled on-disk size in bytes.

        Leaf entries cost key + value bytes; inner entries cost key +
        4-byte child pointers.  This mirrors how the paper accounts
        index storage (it reports index size relative to database size,
        both from the same storage manager).
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                total += len(node.keys) * self._key_bytes
                total += len(node.children) * 4
                stack.extend(node.children)
            else:
                total += len(node.keys) * self._key_bytes
                if callable(self._value_bytes):
                    total += sum(self._value_bytes(v) for v in node.values)
                else:
                    total += len(node.keys) * self._value_bytes
        return total

    def inner_byte_size(self) -> int:
        """Modelled bytes of the inner (non-leaf) levels only.

        Used where leaf entries are accounted separately (e.g. the
        string index counts its hash column once; the tree adds only
        navigation overhead on top).
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                total += len(node.keys) * self._key_bytes
                total += len(node.children) * 4
                stack.extend(node.children)
        return total

    def check_invariants(self) -> None:
        """Validate structural invariants (test support).

        Checks sorted keys, key/child arity, leaf chain completeness and
        the separator property on every path.
        """
        entries_via_chain = list(self.items())
        keys = [k for k, _ in entries_via_chain]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(set(keys)) == len(keys), "duplicate keys"
        assert len(keys) == self._size, "size counter drift"

        def walk(node, low, high, depth):
            if isinstance(node, _Inner):
                assert len(node.children) == len(node.keys) + 1
                assert node.keys == sorted(node.keys)
                bounds = [low, *node.keys, high]
                depths = set()
                for i, child in enumerate(node.children):
                    depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
                assert len(depths) == 1, "leaves at unequal depth"
                return depths.pop()
            assert node.keys == sorted(node.keys)
            for key in node.keys:
                if low is not None:
                    assert key >= low
                if high is not None:
                    assert key < high
            return depth

        leaf_depth = walk(self._root, None, None, 1)
        assert leaf_depth == self._height, "height counter drift"
