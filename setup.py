"""Legacy setup shim.

The primary metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (PEP 660 editable installs need it).
"""

from setuptools import setup

setup()
