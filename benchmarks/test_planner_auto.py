"""Extension bench — cost-based planning ('auto' mode).

Selective predicates should run through the index; unselective ones
(matching a large fraction of the document) are cheaper to scan because
every index hit pays an ancestor walk plus verification.  ``auto`` uses
the equi-depth histograms of :mod:`repro.core.statistics` to choose.
"""

import time

import pytest

from repro.core import IndexManager
from repro.query import query
from repro.workloads import bench_scale, dataset

NAME = "XMark8"

SELECTIVE = "//person[age = 55]"
UNSELECTIVE = "//item[price >= 0]"


@pytest.fixture(scope="module")
def manager():
    m = IndexManager(typed=("double",))
    m.load(NAME, dataset(NAME).build(bench_scale()))
    m.statistics("double")  # warm the snapshot outside the timings
    m.statistics("string")
    return m


@pytest.mark.parametrize("mode", [True, "auto", False], ids=["index", "auto", "scan"])
def test_selective_query(benchmark, manager, mode):
    result = benchmark(lambda: query(manager, SELECTIVE, use_indexes=mode))
    assert result == query(manager, SELECTIVE, use_indexes=False)


@pytest.mark.parametrize("mode", [True, "auto", False], ids=["index", "auto", "scan"])
def test_unselective_query(benchmark, manager, mode):
    result = benchmark(lambda: query(manager, UNSELECTIVE, use_indexes=mode))
    assert result == query(manager, UNSELECTIVE, use_indexes=False)


def test_auto_tracks_the_better_plan(benchmark, manager):
    def timed(text, mode, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            query(manager, text, use_indexes=mode)
            best = min(best, time.perf_counter() - start)
        return best

    lines = []
    # Selective: auto must be near the index plan, far from the scan.
    sel_index = timed(SELECTIVE, True)
    sel_auto = timed(SELECTIVE, "auto")
    sel_scan = timed(SELECTIVE, False)
    assert sel_auto < sel_scan
    lines.append(
        f"  selective:   index {sel_index * 1000:6.1f}  auto "
        f"{sel_auto * 1000:6.1f}  scan {sel_scan * 1000:6.1f} ms"
    )
    # Unselective: auto should not be dramatically worse than the scan
    # (it chooses to scan; the forced index plan pays per-hit walks).
    unsel_index = timed(UNSELECTIVE, True)
    unsel_auto = timed(UNSELECTIVE, "auto")
    unsel_scan = timed(UNSELECTIVE, False)
    assert unsel_auto < unsel_index * 3
    lines.append(
        f"  unselective: index {unsel_index * 1000:6.1f}  auto "
        f"{unsel_auto * 1000:6.1f}  scan {unsel_scan * 1000:6.1f} ms"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nPlanner auto mode (best of 3):")
    print("\n".join(lines))


def test_repeated_queries_hit_plan_cache(benchmark, manager):
    """Acceptance: identical queries replan once per index epoch."""
    counters = manager.metrics.snapshot()["counters"]
    before_hits = counters.get("query.plan_cache.hits", 0)
    before_misses = counters.get("query.plan_cache.misses", 0)

    def repeat():
        for _ in range(10):
            query(manager, SELECTIVE, use_indexes="auto")

    benchmark.pedantic(repeat, rounds=1, iterations=1)
    counters = manager.metrics.snapshot()["counters"]
    # At most one fresh plan for this (query, doc, mode) key; every
    # other execution must reuse it.
    assert counters["query.plan_cache.misses"] - before_misses <= 1
    assert counters["query.plan_cache.hits"] - before_hits >= 9
