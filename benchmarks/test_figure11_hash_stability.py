"""Figure 11 — hash stability (collision distribution).

Per dataset: hash all distinct value-leaf strings, group by hash and
report the paper's distribution (how many hash values are shared by k
distinct strings).  Shape assertions:

* collisions are rare (well under 1%) for XMark/EPAGeo/DBLP;
* Wiki shows the URL pathology: the biggest group reaches toward the
  paper's maximum of 9 distinct strings per hash value, driven by URLs
  whose differing characters repeat every 27 positions.
"""

import pytest

from repro.bench.figure11 import (
    distinct_values,
    format_report,
    hash_stability,
)

from conftest import DATASET_NAMES


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_hash_stability(benchmark, dataset_docs, name):
    doc = dataset_docs[name]
    result = benchmark(hash_stability, doc)
    assert result.distinct_strings > 0
    assert sum(
        size * count for size, count in result.histogram.items()
    ) == result.distinct_strings


def test_figure11_report(benchmark, dataset_docs, capsys):
    def run_all():
        return [
            hash_stability(doc, name)
            for name, doc in dataset_docs.items()
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {r.name: r for r in results}
    for name in ("XMark1", "XMark2", "XMark4", "XMark8", "EPAGeo", "DBLP"):
        assert by_name[name].collision_fraction < 0.01, name
    # The Wiki URL pathology: multi-string groups, largest toward 9.
    wiki = by_name["Wiki"]
    assert wiki.collision_fraction > by_name["XMark1"].collision_fraction
    assert wiki.max_group >= 4
    assert wiki.max_group <= 9
    # But still bounded: less than 10% of strings collide (paper).
    assert wiki.collision_fraction < 0.10
    with capsys.disabled():
        print()
        print("Figure 11: hash values shared by k distinct strings")
        print(format_report(results))


def test_distinct_value_extraction(benchmark, dataset_docs):
    doc = dataset_docs["DBLP"]
    values = benchmark(distinct_values, doc)
    assert len(values) > 100
