"""Table 1 — dataset statistics (paper Section 6, Table 1).

Benchmarks the statistics pass per dataset and prints the regenerated
table with the paper's values for comparison.  The node-mix assertions
(text %, double %, non-leaf counts) pin the calibration that every
other experiment depends on.
"""

import pytest

from repro.bench.table1 import format_report
from repro.workloads import DATASETS, collect_stats

from conftest import DATASET_NAMES


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_table1_stats(benchmark, dataset_docs, name):
    doc = dataset_docs[name]
    stats = benchmark(collect_stats, doc)
    spec = DATASETS[name]
    assert abs(stats.text_fraction - spec.paper_text_pct / 100) < 0.06
    assert abs(stats.double_fraction - spec.paper_double_pct / 100) < 0.025
    if spec.paper_non_leaf == 0:
        assert stats.non_leaf_doubles == 0
    else:
        assert stats.non_leaf_doubles >= 1


def test_table1_report(benchmark, dataset_docs, capsys):
    def build_report():
        return {
            name: collect_stats(doc) for name, doc in dataset_docs.items()
        }

    stats = benchmark.pedantic(build_report, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Table 1: dataset statistics (measured, paper in parens)")
        print(format_report(stats))
