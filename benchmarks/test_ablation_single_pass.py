"""Ablation A4 — single-pass multi-index creation vs. one pass per index.

Paper Section 5: "since all indices are independent of each other,
creating and updating multiple defined indices can be done
simultaneously with only one pass".  In MonetDB the win is one
document scan instead of N.  This bench measures both strategies in
the reproduction and verifies they build identical indices; the
in-memory Python trade-off (loop specialisation vs. scan count) is
reported rather than assumed.
"""

import pytest

from repro.core.builder import build_document
from repro.core.string_index import StringIndex
from repro.core.typed_index import TypedIndex
from repro.workloads import bench_scale, dataset
from repro.xmldb import Store

NAME = "DBLP"


@pytest.fixture(scope="module")
def doc():
    xml = dataset(NAME).build(bench_scale())
    return Store().add_document(NAME, xml)


def _build_single_pass(doc):
    string_index = StringIndex()
    double_index = TypedIndex("double")
    datetime_index = TypedIndex("dateTime")
    build_document(doc, [string_index, double_index, datetime_index])
    return string_index, double_index, datetime_index


def _build_separate_passes(doc):
    string_index = StringIndex()
    double_index = TypedIndex("double")
    datetime_index = TypedIndex("dateTime")
    for index in (string_index, double_index, datetime_index):
        build_document(doc, [index])
    return string_index, double_index, datetime_index


def test_single_pass_creation(benchmark, doc):
    benchmark(_build_single_pass, doc)


def test_separate_pass_creation(benchmark, doc):
    benchmark(_build_separate_passes, doc)


def test_both_strategies_build_identical_indices(benchmark, doc):
    one_string, one_double, one_datetime = _build_single_pass(doc)
    sep_string, sep_double, sep_datetime = _build_separate_passes(doc)
    assert one_string.hash_of == sep_string.hash_of
    assert one_double.fragment_of_node == sep_double.fragment_of_node
    assert list(one_double.tree.keys()) == list(sep_double.tree.keys())
    assert one_datetime.fragment_of_node == sep_datetime.fragment_of_node
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
