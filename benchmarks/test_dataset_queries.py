"""Extension bench — per-dataset query workloads, indexed vs. scan.

Runs each corpus's characteristic query set (repro.workloads.queries)
through the index planner and the naive evaluator, asserting identical
answers and reporting the aggregate speedup per dataset.
"""

import time

import pytest

from repro.core import IndexManager
from repro.query import query
from repro.workloads import bench_scale, dataset
from repro.workloads.queries import QUERY_SETS, queries_for

DATASETS = ["XMark4", "DBLP", "PSD", "Wiki", "EPAGeo"]


@pytest.fixture(scope="module")
def managers():
    built = {}
    for name in DATASETS:
        manager = IndexManager(typed=("double",))
        manager.load(name, dataset(name).build(bench_scale()))
        built[name] = manager
    return built


@pytest.mark.parametrize("name", DATASETS)
def test_workload_indexed(benchmark, managers, name):
    manager = managers[name]
    texts = [text for _d, text in queries_for(name)]

    def run_all():
        return [query(manager, text) for text in texts]

    results = benchmark(run_all)
    assert len(results) == len(texts)


@pytest.mark.parametrize("name", DATASETS)
def test_workload_scan(benchmark, managers, name):
    manager = managers[name]
    texts = [text for _d, text in queries_for(name)]
    benchmark.pedantic(
        lambda: [query(manager, t, use_indexes=False) for t in texts],
        rounds=2,
        iterations=1,
    )


def test_workloads_agree_and_report(benchmark, managers):
    lines = []
    for name in DATASETS:
        manager = managers[name]
        indexed_total = scan_total = 0.0
        for _description, text in queries_for(name):
            start = time.perf_counter()
            indexed = query(manager, text)
            indexed_total += time.perf_counter() - start
            start = time.perf_counter()
            scanned = query(manager, text, use_indexes=False)
            scan_total += time.perf_counter() - start
            assert indexed == scanned, (name, text)
        lines.append(
            f"  {name:>7}: {len(queries_for(name))} queries, "
            f"index {indexed_total * 1000:7.1f} ms, "
            f"scan {scan_total * 1000:7.1f} ms "
            f"({scan_total / max(indexed_total, 1e-9):4.1f}x)"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nPer-dataset query workloads (index vs scan):")
    print("\n".join(lines))


def test_every_query_set_is_covered(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(QUERY_SETS) == {
        "XMark1", "XMark2", "XMark4", "XMark8",
        "EPAGeo", "DBLP", "PSD", "Wiki",
    }
    for name, pairs in QUERY_SETS.items():
        assert pairs, name
