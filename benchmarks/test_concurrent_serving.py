"""Concurrent serving — the group-commit speedup curve.

Runs the writer sweep of :mod:`repro.bench.concurrent` (readers +
1/2/4 writers, group commit off and on, fsync durability) and emits
``BENCH_concurrent_serve.json``.  The headline claim — aggregate
committed-updates/sec at 4 group-committed writers >= 2x the 1-writer
fsync-per-commit baseline — is asserted here, along with the JSON
contract EXPERIMENTS.md consumes (batch occupancy, fsyncs-per-commit,
latency percentiles).  Correctness under the same concurrency is the
business of ``tests/concurrent/``, which cross-checks every query
against the full-scan oracle.
"""

import json
import os

from repro.bench.concurrent import (
    JSON_PATH,
    WRITER_COUNTS,
    format_report,
    run,
    write_json,
)


def test_concurrent_serving_report(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: run(updates_per_writer=200), rounds=1, iterations=1
    )
    assert {(r.writers, r.group_commit) for r in results} == {
        (count, flag) for count in WRITER_COUNTS for flag in (False, True)
    }
    payload = write_json(results)

    assert os.path.exists(JSON_PATH)
    with open(JSON_PATH, encoding="utf-8") as fh:
        on_disk = json.load(fh)
    assert on_disk == payload
    assert on_disk["bench"] == "concurrent_serve"
    for entry in on_disk["configurations"]:
        assert entry["commits_per_second"] > 0
        assert entry["commit_p99_us"] >= entry["commit_p50_us"]
        if entry["group_commit"]:
            assert entry["batch_occupancy"] >= 1.0
        else:
            # fsync-per-commit: no batching anywhere.
            assert entry["fsyncs"] >= entry["commits"]

    # The headline shape: group commit amortizes the durable-media
    # round trip, so 4 writers must commit at >= 2x the serial
    # fsync-per-commit baseline.
    aggregate = on_disk["aggregate"]
    assert aggregate["speedup_vs_baseline"] >= 2.0, aggregate
    four = next(
        entry for entry in on_disk["configurations"]
        if entry["writers"] == 4 and entry["group_commit"]
    )
    assert four["fsyncs_per_commit"] < 1.0, four

    with capsys.disabled():
        print()
        print(format_report(results))
        print(f"group-commit speedup vs 1-writer fsync baseline: "
              f"{aggregate['speedup_vs_baseline']:.2f}x")
