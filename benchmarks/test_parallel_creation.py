"""Parallel index creation — correctness at scale and the speedup curve.

Per dataset: a full :class:`IndexManager` build through the chunked
pooled pass must pass ``check_consistency`` (bit-for-bit equality with
a serial rebuild), and the speedup report of
:mod:`repro.bench.parallel` is emitted as ``BENCH_parallel_build.json``
(serial vs. 2/4/8 workers).

The speedup *shape* assertion (>= 1.5x at 4 workers, process backend)
only applies when the machine actually has 4 cores to run on; the JSON
records ``cores_available`` so downstream readers can judge the curve.
On a single-core runner the parallel pass is still exercised end to
end — correctness is asserted unconditionally.
"""

import json
import os

import pytest

from repro.bench.parallel import (
    JSON_PATH,
    WORKER_COUNTS,
    format_report,
    run,
    write_json,
)
from repro.core import IndexManager
from repro.core.parallel import build_document_parallel, resolve_workers
from repro.core.string_index import StringIndex
from repro.core.typed_index import TypedIndex

from conftest import DATASET_NAMES


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("name", DATASET_NAMES)
def test_consistency_after_parallel_build(dataset_xml, name, backend):
    manager = IndexManager(parallel=4, parallel_backend=backend)
    manager.load(name, dataset_xml[name])
    manager.check_consistency()


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_parallel_creation_time(benchmark, dataset_docs, name):
    doc = dataset_docs[name]
    workers = min(4, resolve_workers("auto"))

    def build():
        indexes = [StringIndex(), TypedIndex("double")]
        build_document_parallel(doc, indexes, workers=workers,
                                backend="process")
        return indexes

    string, _typed = benchmark(build)
    assert len(string) == len(doc)


def test_parallel_speedup_report(benchmark, scale, capsys):
    backend = os.environ.get("REPRO_PARALLEL_BACKEND", "process")
    results = benchmark.pedantic(
        lambda: run(scale=scale, backend=backend, repeats=1),
        rounds=1, iterations=1,
    )
    assert {r.name for r in results} == set(DATASET_NAMES)
    payload = write_json(results, backend=backend, scale=scale)

    # The JSON contract CI and EXPERIMENTS.md consume.
    assert os.path.exists(JSON_PATH)
    with open(JSON_PATH, encoding="utf-8") as fh:
        on_disk = json.load(fh)
    assert on_disk == payload
    assert on_disk["bench"] == "parallel_build"
    assert sorted(on_disk["workers"]) == sorted(WORKER_COUNTS)
    for name in DATASET_NAMES:
        entry = on_disk["datasets"][name]
        assert entry["serial_seconds"] > 0
        for count in WORKER_COUNTS:
            assert entry["parallel_seconds"][str(count)] > 0

    # Speedup shape, where the hardware can show it: with >= 4 cores
    # the 4-worker process build must beat serial by 1.5x overall.
    cores = on_disk["cores_available"]
    aggregate = on_disk["aggregate"]["speedup"]
    if cores >= 4 and backend == "process":
        assert aggregate["4"] >= 1.5, aggregate
    with capsys.disabled():
        print()
        print(f"Parallel creation speedup ({backend} backend, "
              f"{cores} core(s) available)")
        print(format_report(results))
        curve = ", ".join(
            f"{count}w: {aggregate[str(count)]:.2f}x"
            for count in on_disk["workers"]
        )
        print(f"aggregate speedup — {curve}")
