"""Figure 9 (top) — index creation time vs. shredding time.

Per dataset: benchmark the document shred (the paper's baseline), the
string-index creation pass and the double-index creation pass, then
print the overhead table next to the paper's percentages.

Shape assertions: the double index is cheaper to build than the string
index ("the combination step is cheaper ... probing an array vs.
invoking a function"), and creation scales linearly in document size.
"""

import pytest

from repro.bench.figure9 import format_time_report, measure_dataset
from repro.core.builder import build_document
from repro.core.string_index import StringIndex
from repro.core.typed_index import TypedIndex
from repro.xmldb import Store

from conftest import DATASET_NAMES


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_shred_time(benchmark, dataset_xml, name):
    xml = dataset_xml[name]
    doc = benchmark(lambda: Store().add_document(name, xml))
    assert len(doc) > 0


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_string_index_creation(benchmark, dataset_docs, name):
    doc = dataset_docs[name]

    def build():
        index = StringIndex()
        build_document(doc, [index])
        return index

    index = benchmark(build)
    assert len(index) == len(doc)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_double_index_creation(benchmark, dataset_docs, name):
    doc = dataset_docs[name]

    def build():
        index = TypedIndex("double")
        build_document(doc, [index])
        return index

    index = benchmark(build)
    assert index.potential_count() > 0


def test_figure9_time_report(benchmark, dataset_xml, capsys):
    def run_all():
        return [
            measure_dataset(name, xml, repeats=1)
            for name, xml in dataset_xml.items()
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Shape: double-index creation is cheaper than string-index
    # creation in aggregate (per-dataset timings are noisy at small
    # scales, the paper's claim is about the totals).
    total_string = sum(r.string_seconds for r in results)
    total_double = sum(r.double_seconds for r in results)
    assert total_double < total_string
    # Shape: creation time grows with document size across XMark sfs.
    xmark = {r.name: r for r in results if r.name.startswith("XMark")}
    assert xmark["XMark8"].string_seconds > xmark["XMark1"].string_seconds
    with capsys.disabled():
        print()
        print("Figure 9 (top): creation time overhead over shredding")
        print(format_time_report(results))
