"""Ablation A5 — optimistic commutative commits vs. ancestor locking.

Paper Section 5.1: "each update may impact the root node, and locking
the root for each transaction can easily become a bottleneck", which
the commutativity of ``C`` avoids entirely.  This bench runs a batch
of transactions with think time between write and commit:

* under strict 2PL with ancestor locks, think time happens *inside*
  the root lock, so transactions serialise;
* under the optimistic manager, writes are buffered lock-free and only
  the short commit applies — think time overlaps.
"""

import threading
import time

import pytest

from repro.core import IndexManager
from repro.txn import LockingTransactionManager, TransactionManager
from repro.workloads import bench_scale, dataset, text_nids

NAME = "XMark1"
WORKERS = 8
THINK_SECONDS = 0.01


def _fresh_index_manager():
    manager = IndexManager(string=True, typed=())
    manager.load(NAME, dataset(NAME).build(bench_scale()))
    return manager


def _run_workload(begin, targets):
    """Each worker: begin, write one node, think, commit."""
    errors = []

    def worker(nid):
        try:
            txn = begin()
            txn.update_text(nid, "updated value")
            time.sleep(THINK_SECONDS)
            txn.commit()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(nid,)) for nid in targets]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors
    return elapsed


@pytest.fixture(scope="module")
def targets():
    manager = _fresh_index_manager()
    doc = manager.store.document(NAME)
    nids = text_nids(doc)
    step = max(1, len(nids) // WORKERS)
    return [nids[i * step] for i in range(WORKERS)]


def test_optimistic_concurrent_commits(benchmark, targets):
    def run():
        manager = _fresh_index_manager()
        txns = TransactionManager(manager)
        return _run_workload(txns.begin, targets)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_locking_concurrent_commits(benchmark, targets):
    def run():
        manager = _fresh_index_manager()
        txns = LockingTransactionManager(manager)
        return _run_workload(txns.begin, targets)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_root_lock_is_the_bottleneck(benchmark, targets):
    manager_optimistic = _fresh_index_manager()
    optimistic = TransactionManager(manager_optimistic)
    optimistic_elapsed = _run_workload(optimistic.begin, targets)

    manager_locking = _fresh_index_manager()
    locking = LockingTransactionManager(manager_locking)
    locking_elapsed = _run_workload(locking.begin, targets)

    # Locking serialises the think time (>= WORKERS * think); the
    # optimistic manager overlaps it.
    assert locking_elapsed >= WORKERS * THINK_SECONDS * 0.9
    assert optimistic_elapsed < locking_elapsed
    # Both end in the same state as a rebuild.
    manager_optimistic.check_consistency()
    manager_locking.check_consistency()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(
        f"\nA5: {WORKERS} txns with {THINK_SECONDS * 1000:.0f} ms think time: "
        f"optimistic {optimistic_elapsed * 1000:.0f} ms, "
        f"ancestor-locking {locking_elapsed * 1000:.0f} ms "
        f"({locking.lock_retries} lock retries)"
    )
