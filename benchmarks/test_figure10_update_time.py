"""Figure 10 — update time vs. number of updated text nodes.

Per dataset × batch size × index kind: one maintenance pass (paper
Figure 8) over a random batch of text updates.  Shape assertions:

* growth is sub-linear in the batch size (shared ancestors recompute
  once per pass);
* the double index updates faster than the string index in aggregate
  ("because of the faster combination step").
"""

import random

import pytest

from repro.bench.figure10 import format_report, measure_dataset
from repro.core import IndexManager
from repro.workloads import random_text_updates

from conftest import DATASET_NAMES

BATCHES = (1, 10, 100, 1000)


@pytest.fixture(scope="module")
def update_managers(dataset_xml):
    """(name, kind) -> manager with only that index built."""
    managers = {}
    for name, xml in dataset_xml.items():
        string_manager = IndexManager(string=True, typed=())
        string_manager.load(name, xml)
        managers[(name, "string")] = string_manager
        double_manager = IndexManager(string=False, typed=("double",))
        double_manager.load(name, xml)
        managers[(name, "double")] = double_manager
    return managers


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("kind", ["string", "double"])
@pytest.mark.parametrize("batch", BATCHES)
def test_update_batch(benchmark, update_managers, name, kind, batch):
    manager = update_managers[(name, kind)]
    doc = manager.store.document(name)
    rng = random.Random(13)

    def one_pass():
        manager.update_texts(random_text_updates(doc, batch, rng))

    benchmark.pedantic(one_pass, rounds=3, iterations=1)


def test_figure10_report(benchmark, dataset_xml, capsys):
    def run_all():
        results = []
        for name, xml in dataset_xml.items():
            for kind in ("string", "double"):
                results.append(
                    measure_dataset(
                        name, xml, kind, batches=BATCHES, repeats=3
                    )
                )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for series in results:
        # Sub-linear: 1000 updates cost far less than 1000x one update.
        per_one = series.timings[1]
        per_thousand = series.timings[1000]
        assert per_thousand < per_one * 400, series
    total = {"string": 0.0, "double": 0.0}
    for series in results:
        total[series.index_kind] += sum(series.timings.values())
    assert total["double"] < total["string"]
    with capsys.disabled():
        print()
        print("Figure 10: update time vs number of updated text nodes")
        print(format_report(results))
