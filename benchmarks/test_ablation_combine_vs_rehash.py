"""Ablation A1 — the combination function C vs. full re-hashing.

The paper's central maintenance argument (Section 3): updating a text
node without ``C`` means re-reading and re-hashing the full string
value of every ancestor — on the root, the whole document.  With ``C``
only sibling hash values are read.  This bench updates single text
nodes on the largest dataset both ways and checks C wins by a wide
margin while producing identical index state.
"""

import random

import pytest

from repro.bench.ablations import rehash_update
from repro.core import IndexManager, apply_text_updates
from repro.workloads import dataset, bench_scale, random_text_updates

NAME = "XMark8"


@pytest.fixture(scope="module")
def managers():
    xml = dataset(NAME).build(bench_scale())
    with_c = IndexManager(string=True, typed=())
    with_c.load(NAME, xml)
    without_c = IndexManager(string=True, typed=())
    without_c.load(NAME, xml)
    return with_c, without_c


def _batch(manager, count, seed):
    doc = manager.store.document(NAME)
    return random_text_updates(doc, count, random.Random(seed))


@pytest.mark.parametrize("batch", [1, 100])
def test_update_with_combination_function(benchmark, managers, batch):
    with_c, _ = managers

    def run():
        updates = _batch(with_c, batch, 5)
        for nid, text in updates:
            with_c.store.update_text(nid, text)
        apply_text_updates(with_c.store, [n for n, _ in updates], with_c.indexes)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("batch", [1, 100])
def test_update_with_full_rehash(benchmark, managers, batch):
    _, without_c = managers

    def run():
        updates = _batch(without_c, batch, 5)
        for nid, text in updates:
            without_c.store.update_text(nid, text)
        rehash_update(
            without_c.store, without_c.string_index, [n for n, _ in updates]
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_strategies_agree_and_c_wins(benchmark, managers):
    """Same final hashes both ways; C is faster (asserted in aggregate)."""
    import time

    with_c, without_c = managers
    updates = _batch(with_c, 10, 99)

    def timed(manager, maintain):
        for nid, text in updates:
            manager.store.update_text(nid, text)
        start = time.perf_counter()
        maintain()
        return time.perf_counter() - start

    c_seconds = timed(
        with_c,
        lambda: apply_text_updates(
            with_c.store, [n for n, _ in updates], with_c.indexes
        ),
    )
    rehash_seconds = timed(
        without_c,
        lambda: rehash_update(
            without_c.store, without_c.string_index, [n for n, _ in updates]
        ),
    )
    assert with_c.string_index.hash_of == without_c.string_index.hash_of
    # Re-hashing reads every ancestor's full subtree text; C reads only
    # sibling hashes. On a ~20k-node document C must win clearly.
    assert c_seconds < rehash_seconds
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(
        f"\nA1: combine C {c_seconds * 1000:.1f} ms vs "
        f"full re-hash {rehash_seconds * 1000:.1f} ms "
        f"({rehash_seconds / max(c_seconds, 1e-9):.1f}x)"
    )
