"""Shared fixtures for the benchmark suite.

The datasets are generated once per session at ``REPRO_BENCH_SCALE``
(default 0.12 — ~65k nodes over the eight corpora; raise the env var
to stress the curves at larger sizes).
"""

from __future__ import annotations

import pytest

from repro.workloads import DATASETS, bench_scale
from repro.xmldb import Store

#: Dataset order follows the paper's Table 1.
DATASET_NAMES = list(DATASETS)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def dataset_xml(scale):
    """name -> serialized XML of every catalog dataset."""
    return {name: spec.build(scale) for name, spec in DATASETS.items()}


@pytest.fixture(scope="session")
def dataset_docs(dataset_xml):
    """name -> shredded Document (one shared store per dataset)."""
    docs = {}
    for name, xml in dataset_xml.items():
        store = Store()
        docs[name] = store.add_document(name, xml)
    return docs
