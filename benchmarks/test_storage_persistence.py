"""Extension bench — persistence: save/open times and real file sizes.

Complements the modelled storage accounting of Figure 9 with *actual*
on-disk bytes of the binary format, and shows that opening a database
(reading fields + bulk-loading the trees) is far cheaper than
re-shredding and re-hashing from XML.
"""

import os
import time

import pytest

from repro.core import IndexManager
from repro.storage import load_manager, save_manager
from repro.workloads import bench_scale, dataset

NAME = "XMark4"


@pytest.fixture(scope="module")
def built():
    xml = dataset(NAME).build(bench_scale())
    manager = IndexManager(typed=("double",))
    manager.load(NAME, xml)
    return manager, xml


def _dir_size(path: str) -> int:
    return sum(
        os.path.getsize(os.path.join(path, f)) for f in os.listdir(path)
    )


def test_save_manager(benchmark, built, tmp_path_factory):
    manager, _xml = built

    def save():
        target = tmp_path_factory.mktemp("db")
        save_manager(manager, str(target))
        return str(target)

    path = benchmark(save)
    assert _dir_size(path) > 0


def test_load_manager(benchmark, built, tmp_path_factory):
    manager, _xml = built
    path = str(tmp_path_factory.mktemp("db"))
    save_manager(manager, path)
    loaded = benchmark(lambda: load_manager(path))
    assert loaded.string_index.hash_of == manager.string_index.hash_of


def test_open_vs_rebuild(benchmark, built, tmp_path_factory):
    """Opening persisted indices beats re-shredding + re-indexing."""
    manager, xml = built
    path = str(tmp_path_factory.mktemp("db"))
    save_manager(manager, path)

    start = time.perf_counter()
    loaded = load_manager(path)
    open_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rebuilt = IndexManager(typed=("double",))
    rebuilt.load(NAME, xml)
    rebuild_seconds = time.perf_counter() - start

    assert loaded.string_index.hash_of == rebuilt.string_index.hash_of
    assert open_seconds < rebuild_seconds
    real = _dir_size(path)
    modelled = manager.store.byte_size() + sum(
        manager.index_sizes().values()
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(
        f"\nPersistence: open {open_seconds * 1000:.0f} ms vs rebuild "
        f"{rebuild_seconds * 1000:.0f} ms; on-disk {real:,} B "
        f"(modelled {modelled:,} B, ratio {real / modelled:.2f})"
    )
