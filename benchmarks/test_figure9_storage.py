"""Figure 9 (bottom) — index storage relative to database size.

Per dataset: modelled byte sizes of the database, the string index and
the double index.  Paper shapes asserted:

* string index is 10-20% of database size, and *lower* for documents
  with few large text nodes (Wiki) than for many small ones;
* double index is a few percent at most, and near zero for Wiki
  (0.1% doubles).
"""

import pytest

from repro.bench.figure9 import format_storage_report, measure_dataset
from repro.core import IndexManager

from conftest import DATASET_NAMES


@pytest.fixture(scope="module")
def built_managers(dataset_xml):
    managers = {}
    for name, xml in dataset_xml.items():
        manager = IndexManager(typed=("double",))
        manager.load(name, xml)
        managers[name] = manager
    return managers


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_storage_accounting(benchmark, built_managers, name):
    manager = built_managers[name]
    sizes = benchmark(manager.index_sizes)
    db = manager.store.byte_size()
    assert 0 < sizes["string"] < db
    assert 0 < sizes["double"] < sizes["string"]


def test_figure9_storage_report(benchmark, dataset_xml, capsys):
    def run_all():
        return [
            measure_dataset(name, xml, repeats=1)
            for name, xml in dataset_xml.items()
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {r.name: r for r in results}
    for r in results:
        # String index: 5-25% of DB (paper: 10-20%).
        assert 0.05 < r.string_storage_fraction < 0.25, r.name
        # Double index always smaller than the string index.
        assert r.double_bytes < r.string_bytes, r.name
    # Wiki's double index is negligible (0.1% double values).
    assert by_name["Wiki"].double_storage_fraction < 0.01
    # Wiki has the lowest string-index fraction (few huge text nodes).
    assert by_name["Wiki"].string_storage_fraction == min(
        r.string_storage_fraction for r in results
    )
    with capsys.disabled():
        print()
        print("Figure 9 (bottom): storage overhead over database size")
        print(format_storage_report(results))
