"""Extension bench — scaling curves for creation and lookups.

The paper's Figure 9 shows creation cost growing with the XMark scale
factor.  This bench sweeps document sizes explicitly and asserts the
near-linear shape for index creation, and the sub-linear (logarithmic
tree descent + candidate-proportional) shape for lookups.
"""

import time

import pytest

from repro.core import IndexManager
from repro.core.builder import build_document
from repro.core.string_index import StringIndex
from repro.workloads import generate_xmark
from repro.xmldb import Store

SCALES = (0.05, 0.1, 0.2, 0.4)


@pytest.fixture(scope="module")
def docs():
    built = []
    for scale in SCALES:
        doc = Store().add_document(f"x{scale}", generate_xmark(scale, seed=3))
        built.append(doc)
    return built


@pytest.mark.parametrize("index", range(len(SCALES)))
def test_creation_at_scale(benchmark, docs, index):
    doc = docs[index]

    def build():
        string_index = StringIndex()
        build_document(doc, [string_index])
        return string_index

    built = benchmark(build)
    assert len(built) == len(doc)


def test_creation_scales_linearly(benchmark, docs):
    timings = []
    for doc in docs:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            build_document(doc, [StringIndex()])
            best = min(best, time.perf_counter() - start)
        timings.append((len(doc), best))
    # Cost per node at the largest scale within 3x of the smallest:
    # linear growth, no superlinear blowup from the B-tree build.
    per_node = [seconds / nodes for nodes, seconds in timings]
    assert max(per_node) < 3 * min(per_node), timings
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nCreation scaling (nodes, ms, ns/node):")
    for nodes, seconds in timings:
        print(f"  {nodes:>7,}  {seconds * 1000:7.1f}  "
              f"{seconds / nodes * 1e9:6.0f}")


def test_lookup_cost_stays_flat(benchmark, docs):
    """Point lookups cost O(log n + answer), not O(n): the largest
    document's lookup is nowhere near proportionally slower."""
    managers = []
    for doc in docs:
        manager = IndexManager(typed=("double",))
        manager.load(f"m{len(managers)}", doc.serialize())
        managers.append(manager)
    timings = []
    for manager in managers:
        best = float("inf")
        for _ in range(20):
            start = time.perf_counter()
            list(manager.lookup_typed_equal("double", 55.0))
            best = min(best, time.perf_counter() - start)
        nodes = manager.store.total_nodes()
        timings.append((nodes, best))
    smallest_nodes, smallest_time = timings[0]
    largest_nodes, largest_time = timings[-1]
    growth = largest_nodes / smallest_nodes
    slowdown = largest_time / max(smallest_time, 1e-9)
    assert slowdown < growth, timings  # decisively sub-linear
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(f"\nLookup scaling: {growth:.0f}x nodes -> {slowdown:.1f}x time")
