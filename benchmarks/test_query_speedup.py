"""Ablation A3 — index-accelerated queries vs. full document scans.

The paper motivates the indices with XPath value predicates
(Section 1).  This bench runs the paper's query shapes over the XMark
dataset with and without index use, asserting identical answers and an
index-side win for selective predicates.
"""

import pytest

from repro.core import IndexManager
from repro.query import explain, query
from repro.workloads import bench_scale, dataset
from repro.xmldb import TEXT

NAME = "XMark4"


@pytest.fixture(scope="module")
def manager():
    m = IndexManager(string=True, typed=("double",))
    m.load(NAME, dataset(NAME).build(bench_scale()))
    return m


@pytest.fixture(scope="module")
def selective_queries(manager):
    """Query strings with small answers, derived from actual data."""
    doc = manager.store.document(NAME)
    # A string value that occurs in the document.
    word = next(
        doc.text_of(p)
        for p in range(len(doc))
        if doc.kind[p] == TEXT and doc.name_of(doc.parent(p)) == "name"
    )
    return [
        f'//item[name = "{word}"]',
        "//item[quantity = 5]",
        "//open_auction[initial < 1]",
        "//person[age >= 97]",
    ]


def test_plans_use_indexes(benchmark, manager, selective_queries):
    for text in selective_queries:
        assert explain(manager, text).startswith("index"), text
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("case", range(4))
def test_indexed_query(benchmark, manager, selective_queries, case):
    text = selective_queries[case]
    result = benchmark(lambda: query(manager, text))
    assert result == query(manager, text, use_indexes=False)


@pytest.mark.parametrize("case", range(4))
def test_scan_query(benchmark, manager, selective_queries, case):
    text = selective_queries[case]
    benchmark(lambda: query(manager, text, use_indexes=False))


def test_speedup_summary(benchmark, manager, selective_queries):
    import time

    lines = []
    total_indexed = total_scan = 0.0
    for text in selective_queries:
        start = time.perf_counter()
        indexed = query(manager, text)
        indexed_s = time.perf_counter() - start
        start = time.perf_counter()
        scanned = query(manager, text, use_indexes=False)
        scan_s = time.perf_counter() - start
        assert indexed == scanned
        total_indexed += indexed_s
        total_scan += scan_s
        lines.append(
            f"  {text}: index {indexed_s * 1000:.1f} ms, "
            f"scan {scan_s * 1000:.1f} ms, {len(indexed)} hits"
        )
    assert total_indexed < total_scan
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nA3: query speedup (index vs scan)")
    print("\n".join(lines))
