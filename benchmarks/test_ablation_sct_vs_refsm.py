"""Ablation A2 — SCT probes vs. re-running the FSM on update.

Paper Section 4: the SCT exists "to efficiently compute the state of
an intermediate node without reconstructing the lexical representation
of that node".  This bench maintains the double index after text
updates either through the SCT fold (paper Figure 8) or by re-reading
each affected ancestor's string value and re-running the FSM.
"""

import random

import pytest

from repro.bench.ablations import refsm_update
from repro.core import IndexManager, apply_text_updates
from repro.workloads import bench_scale, dataset, random_text_updates

NAME = "PSD"  # numeric-sparse: rejection short-circuits both paths


@pytest.fixture(scope="module")
def managers():
    xml = dataset(NAME).build(bench_scale())
    with_sct = IndexManager(string=False, typed=("double",))
    with_sct.load(NAME, xml)
    without_sct = IndexManager(string=False, typed=("double",))
    without_sct.load(NAME, xml)
    return with_sct, without_sct


def _apply(manager, updates):
    for nid, text in updates:
        manager.store.update_text(nid, text)


@pytest.mark.parametrize("batch", [1, 100])
def test_update_with_sct(benchmark, managers, batch):
    with_sct, _ = managers
    doc = with_sct.store.document(NAME)
    rng = random.Random(17)

    def run():
        updates = random_text_updates(doc, batch, rng)
        _apply(with_sct, updates)
        apply_text_updates(
            with_sct.store, [n for n, _ in updates], with_sct.indexes
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("batch", [1, 100])
def test_update_with_refsm(benchmark, managers, batch):
    _, without_sct = managers
    doc = without_sct.store.document(NAME)
    rng = random.Random(17)

    def run():
        updates = random_text_updates(doc, batch, rng)
        _apply(without_sct, updates)
        refsm_update(
            without_sct.store,
            without_sct.typed_index("double"),
            [n for n, _ in updates],
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_strategies_agree(benchmark, managers):
    with_sct, without_sct = managers
    doc = with_sct.store.document(NAME)
    updates = random_text_updates(doc, 25, random.Random(23))
    _apply(with_sct, updates)
    _apply(without_sct, updates)
    apply_text_updates(
        with_sct.store, [n for n, _ in updates], with_sct.indexes
    )
    refsm_update(
        without_sct.store,
        without_sct.typed_index("double"),
        [n for n, _ in updates],
    )
    left = with_sct.typed_index("double")
    right = without_sct.typed_index("double")
    assert {
        nid: fragment.state for nid, fragment in left.fragment_of_node.items()
    } == {
        nid: fragment.state for nid, fragment in right.fragment_of_node.items()
    }
    assert list(left.tree.keys()) == list(right.tree.keys())
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
