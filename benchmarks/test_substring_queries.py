"""Extension bench — substring/regex lookups (paper's future work).

Measures the q-gram index against full-scan ``contains``/``matches``
on the text-heavy Wiki dataset, plus its build and storage overhead.
"""

import pytest

from repro.core import IndexManager
from repro.core.substring_index import SubstringIndex
from repro.workloads import bench_scale, dataset
from repro.xmldb import ATTR, TEXT

NAME = "Wiki"


@pytest.fixture(scope="module")
def managers():
    xml = dataset(NAME).build(bench_scale())
    with_index = IndexManager(string=False, typed=(), substring=True)
    with_index.load(NAME, xml)
    without_index = IndexManager(string=False, typed=())
    without_index.load(NAME, xml)
    return with_index, without_index


@pytest.fixture(scope="module")
def needle(managers):
    """A needle occurring in a handful of leaves: a URL path suffix."""
    with_index, _ = managers
    doc = with_index.store.document(NAME)
    url = next(
        doc.text_of(p)
        for p in range(len(doc))
        if doc.text_id[p] >= 0 and doc.text_of(p).startswith("http")
    )
    return url[-8:]


def test_substring_index_build(benchmark, managers):
    with_index, _ = managers
    doc = with_index.store.document(NAME)
    leaves = [
        (doc.nid[p], doc.text_of(p))
        for p in range(len(doc))
        if doc.kind[p] in (TEXT, ATTR)
    ]

    def build():
        index = SubstringIndex()
        for nid, text in leaves:
            index.set_entry(nid, text)
        return index

    index = benchmark(build)
    assert len(index) > 0


def test_contains_with_index(benchmark, managers, needle):
    with_index, _ = managers
    hits = benchmark(lambda: list(with_index.lookup_contains(needle)))
    assert hits


def test_contains_with_scan(benchmark, managers, needle):
    with_index, without_index = managers
    hits = benchmark(lambda: list(without_index.lookup_contains(needle)))
    assert len(hits) == len(list(with_index.lookup_contains(needle)))


def test_regex_with_index(benchmark, managers, needle):
    with_index, _ = managers
    pattern = f"wiki/.*{needle[-4:]}"
    benchmark(lambda: list(with_index.lookup_regex(pattern)))


def test_substring_speedup_and_storage(benchmark, managers, needle):
    import time

    with_index, without_index = managers
    start = time.perf_counter()
    indexed = list(with_index.lookup_contains(needle))
    indexed_seconds = time.perf_counter() - start
    start = time.perf_counter()
    scanned = list(without_index.lookup_contains(needle))
    scan_seconds = time.perf_counter() - start
    assert sorted(indexed) == sorted(scanned)
    assert indexed_seconds < scan_seconds
    db = with_index.store.byte_size()
    sub = with_index.substring_index.byte_size()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(
        f"\nSubstring: index {indexed_seconds * 1000:.1f} ms vs scan "
        f"{scan_seconds * 1000:.1f} ms "
        f"({scan_seconds / max(indexed_seconds, 1e-9):.0f}x); "
        f"storage {sub / db:.0%} of DB"
    )
