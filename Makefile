# Tiered checks for the reproduction.
#
#   make test    — tier-1: lint (when ruff is available) + the
#                  crash-recovery fault suite + the concurrent
#                  differential suite + the full unit/property suite
#                  (ROADMAP verify)
#   make lint    — ruff over src/ (config in pyproject.toml); skipped
#                  with a notice when ruff is not installed
#   make faults  — just the fault-injection crash-recovery suite
#                  (docs/durability.md)
#   make concurrent — just the differential concurrency suite
#                  (docs/concurrency.md)
#   make serve-test — just the network serving suite (docs/serving.md)
#   make shard-test — just the shard-per-core suite: manifest,
#                  coordinator, scatter-gather properties and the
#                  kill-one-shard fault case (docs/sharding.md)
#   make repl-test — just the replication suite: WAL shipping,
#                  catch-up, failover, time travel
#                  (docs/replication.md)
#   make elastic-test — just the elasticity suite: online migration
#                  chaos/crashpoint cases, the differential property
#                  interleavings and the follower-resync cases
#                  (docs/sharding.md, elastic shards)
#   make stress  — bounded, seeded reader/writer soak (default 30s;
#                  tune with STRESS_SECONDS / STRESS_SEED)
#   make bench   — tier-2: paper experiments + ablations at the default
#                  bench scale, including the parallel-creation curve
#                  (emits BENCH_parallel_build.json)
#   make bench-parallel — just the parallel-creation experiment
#   make bench-concurrent — concurrent serving sweep
#                  (emits BENCH_concurrent_serve.json)
#   make bench-serve — network serving bench: N client connections
#                  against one server (emits BENCH_serve_network.json)
#   make bench-vectorized — batch vs scalar executor query sweep
#                  (emits BENCH_vectorized_exec.json)
#   make bench-shard — scatter-gather scale-out sweep over shard
#                  counts, differential-verified against the
#                  single-engine oracle (emits BENCH_shard_scaleout.json)
#   make bench-repl — read scale-out over followers + steady-state
#                  replication lag (emits BENCH_replication.json)
#   make bench-elastic — read throughput under continuous migrations
#                  vs quiesced + per-migration cost
#                  (emits BENCH_elastic.json)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
REPRO_BENCH_SCALE ?= 0.12
STRESS_SECONDS ?= 30
STRESS_SEED ?= 777

.PHONY: test lint faults concurrent serve-test shard-test repl-test \
	elastic-test stress bench bench-parallel bench-concurrent \
	bench-serve bench-vectorized bench-shard bench-repl bench-elastic

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

faults:
	$(PYTHON) -m pytest tests/faults -q

concurrent:
	$(PYTHON) -m pytest tests/concurrent -q

serve-test:
	$(PYTHON) -m pytest tests/server -q

shard-test:
	$(PYTHON) -m pytest tests/shard tests/concurrent/test_shard_faults.py -q

repl-test:
	$(PYTHON) -m pytest tests/repl -q

elastic-test:
	$(PYTHON) -m pytest tests/shard/test_migration_faults.py \
	    tests/shard/test_elastic_property.py \
	    tests/repl/test_elastic_resync.py -q

stress:
	REPRO_STRESS_SECONDS=$(STRESS_SECONDS) REPRO_STRESS_SEED=$(STRESS_SEED) \
	$(PYTHON) -m pytest tests/concurrent -q -s

test: lint faults concurrent serve-test shard-test repl-test elastic-test
	$(PYTHON) -m pytest -x -q

bench: bench-vectorized
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-parallel:
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) \
	$(PYTHON) -m pytest benchmarks/test_parallel_creation.py \
	    --benchmark-only

bench-concurrent:
	$(PYTHON) -m repro.bench.concurrent

bench-serve:
	$(PYTHON) -m repro.bench.serve

bench-vectorized:
	$(PYTHON) -m repro.bench.vectorized

bench-shard:
	$(PYTHON) -m repro.bench.shard

bench-repl:
	$(PYTHON) -m repro.bench.repl

bench-elastic:
	$(PYTHON) -m repro.bench.elastic
