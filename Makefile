# Tiered checks for the reproduction.
#
#   make test    — tier-1: lint (when ruff is available) + the
#                  crash-recovery fault suite + the full unit/property
#                  suite (ROADMAP verify)
#   make lint    — ruff over src/ (config in pyproject.toml); skipped
#                  with a notice when ruff is not installed
#   make faults  — just the fault-injection crash-recovery suite
#                  (docs/durability.md)
#   make bench   — tier-2: paper experiments + ablations at the default
#                  bench scale, including the parallel-creation curve
#                  (emits BENCH_parallel_build.json)
#   make bench-parallel — just the parallel-creation experiment

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
REPRO_BENCH_SCALE ?= 0.12

.PHONY: test lint faults bench bench-parallel

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

faults:
	$(PYTHON) -m pytest tests/faults -q

test: lint faults
	$(PYTHON) -m pytest -x -q

bench:
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-parallel:
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) \
	$(PYTHON) -m pytest benchmarks/test_parallel_creation.py \
	    --benchmark-only
