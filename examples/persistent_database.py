"""A persistent XML database with an XMark-style query workload.

Builds a database on disk, reopens it (no re-hashing, no FSM re-runs),
and runs a mixed query workload comparing three planning modes:
forced index, cost-based auto, and full scan.

Run:  python examples/persistent_database.py [scale]
"""

import sys
import tempfile
import time

from repro import IndexManager
from repro.query import explain, query
from repro.storage import load_manager, save_manager
from repro.workloads import generate_xmark

WORKLOAD = [
    # (description, query)
    ("point lookup on a quantity", "//item[quantity = 5]"),
    ("selective price range", "//open_auction[initial < 0.5]"),
    ("unselective range (auto should scan)", "//item[price > 0]"),
    ("string equality on a name", '//person[city = "magrathea"]'),
    ("conjunction", "//item[quantity = 5 and price < 100]"),
    ("disjunction", "//person[age = 42 or age = 99]"),
    ("positional", "//item[1]/name"),
]


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0

    with tempfile.TemporaryDirectory() as tmp:
        print("== building and persisting ==")
        manager = IndexManager(typed=("double",), substring=True)
        start = time.perf_counter()
        doc = manager.load("auctions", generate_xmark(scale))
        build_s = time.perf_counter() - start
        save_manager(manager, tmp)
        print(f"  built {len(doc):,} nodes in {build_s * 1000:.0f} ms; "
              f"saved to {tmp}")

        print("\n== reopening from disk ==")
        start = time.perf_counter()
        reopened = load_manager(tmp)
        open_s = time.perf_counter() - start
        print(f"  opened in {open_s * 1000:.0f} ms "
              f"({build_s / open_s:.1f}x faster than rebuilding)")
        assert reopened.string_index.hash_of == manager.string_index.hash_of

        print("\n== query workload (indexed / auto / scan, ms) ==")
        for description, text in WORKLOAD:
            timings = {}
            results = {}
            for mode in (True, "auto", False):
                start = time.perf_counter()
                results[mode] = query(reopened, text, use_indexes=mode)
                timings[mode] = (time.perf_counter() - start) * 1000
            assert results[True] == results["auto"] == results[False]
            print(f"  {description}")
            print(f"    {text}  [{explain(reopened, text)}]")
            print(f"    indexed {timings[True]:7.1f}  "
                  f"auto {timings['auto']:7.1f}  "
                  f"scan {timings[False]:7.1f}  "
                  f"-> {len(results[True])} hits")


if __name__ == "__main__":
    main()
