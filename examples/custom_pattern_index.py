"""Custom typed indices compiled from regular expressions.

The paper's typed-index recipe needs only a DFA per type; this example
defines two *user* types at runtime — ISBNs and order numbers — from
regular expressions, and gets fully updatable range indices over them,
mixed-content semantics included.

Run:  python examples/custom_pattern_index.py
"""

from repro import IndexManager
from repro.core.fsm import pattern_plugin, register_type

CATALOG = """\
<catalog>\
<book><title>The Guide</title><isbn>978-0-33911-641-1</isbn></book>\
<book><title>Mostly Harmless</title>\
<isbn>978-0<check>-3453</check>9-182-7</isbn></book>\
<book><title>Not a book</title><isbn>none assigned</isbn></book>\
<order number="ORD-2008-00042"/>\
<order number="ORD-2008-00117"/>\
</catalog>"""


def main():
    # Two custom types, straight from patterns.  The ISBN cast keeps
    # the matched text; the order cast extracts the numeric suffix.
    register_type(
        "isbn",
        lambda: pattern_plugin("isbn", r"97[89]-\d-\d\d\d\d\d-\d\d\d-\d"),
    )
    register_type(
        "orderno",
        lambda: pattern_plugin(
            "orderno",
            r"ORD-\d\d\d\d-\d\d\d\d\d",
            cast=lambda p, tokens: int(p.render(tokens).rsplit("-", 1)[1]),
        ),
    )

    manager = IndexManager(typed=("isbn", "orderno"))
    manager.load("catalog", CATALOG)

    print("== ISBN range scan (lexicographic) ==")
    for value, nid in manager.lookup_typed_range("isbn"):
        doc, pre = manager.store.node(nid)
        kind = {1: "element", 2: "text"}.get(doc.kind[pre], "?")
        name = doc.name_of(pre) if doc.kind[pre] == 1 else "-"
        print(f"  {value}  ({kind} {name})")
    print("  note: the second book's ISBN is split across mixed content")
    print("  (<isbn>978-0<check>-3453</check>9-182-7</isbn>) and still")
    print("  indexes as one value via the SCT.")

    print("\n== order numbers as integers ==")
    for value, _nid in manager.lookup_typed_range("orderno", 1, 100):
        print(f"  order #{value}")

    print("\n== updates maintain pattern indices too ==")
    doc = manager.store.document("catalog")
    bad_isbn = next(
        doc.nid[p]
        for p in range(len(doc))
        if doc.text_id[p] >= 0 and doc.text_of(p) == "none assigned"
    )
    manager.update_text(bad_isbn, "978-1-99999-000-5")
    hits = list(manager.lookup_typed_equal("isbn", "978-1-99999-000-5"))
    print(f"  fixed ISBN now indexed: {len(hits)} node(s)")
    manager.check_consistency()
    print("  consistency check: OK")


if __name__ == "__main__":
    main()
