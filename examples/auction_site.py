"""Auction-site workload: generic indices over an XMark-like document.

Demonstrates the paper's self-tuning claim on a realistic corpus: no
path or type configuration, yet string equality, numeric equality and
numeric range predicates are all index-accelerated — and the indices
follow a stream of updates.

Run:  python examples/auction_site.py [scale]
"""

import random
import sys
import time

from repro import IndexManager
from repro.query import explain, query
from repro.workloads import collect_stats, generate_xmark, random_text_updates


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label}: {(time.perf_counter() - start) * 1000:.1f} ms")
    return result


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    print(f"== generating XMark-like document (scale {scale}) ==")
    xml = generate_xmark(scale)
    print(f"  {len(xml):,} bytes of XML")

    manager = IndexManager(typed=("double",))
    doc = timed("shred + build string/double indices",
                lambda: manager.load("auctions", xml))
    stats = collect_stats(doc)
    print(f"  {stats.total_nodes:,} nodes, {stats.text_nodes:,} value leaves, "
          f"{stats.double_values:,} potential doubles")

    print("\n== queries ==")
    queries = [
        "//item[quantity = 5]",
        "//open_auction[initial < 0.5]",
        "//person[age >= 95]",
        '//item[location = "galaxy"]',
    ]
    for q in queries:
        plan = explain(manager, q)
        hits = timed(f"{q}  [{plan}]", lambda q=q: query(manager, q))
        scan = query(manager, q, use_indexes=False)
        assert hits == scan, "index and scan must agree"
        print(f"    -> {len(hits)} hits (verified against full scan)")

    print("\n== update stream ==")
    rng = random.Random(42)
    for batch in (1, 10, 100, 1000):
        updates = random_text_updates(doc, batch, rng)
        start = time.perf_counter()
        touched = manager.update_texts(updates)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"  {batch:>5} updates: {elapsed:7.1f} ms "
              f"({touched} index entries recomputed)")

    print("\n== consistency check (indices equal a fresh rebuild) ==")
    manager.check_consistency()
    print("  OK")


if __name__ == "__main__":
    main()
