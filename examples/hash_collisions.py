"""The hash function's URL pathology, and why lookups stay correct.

The paper's Figure 11 finds that Wikipedia URLs defeat the hash
function: characters repeated every 27 positions XOR into the same
c-array offset and cancel, so families of distinct URLs share one hash
value (up to 9 observed).  This example reproduces the pathology and
shows the equality lookup remaining exact thanks to candidate
verification.

Run:  python examples/hash_collisions.py
"""

import random

from repro import IndexManager, hash_string
from repro.workloads import collision_family


def main():
    rng = random.Random(2025)
    family = collision_family(rng, 5)
    print("== five distinct URLs, one hash value ==")
    for url in family:
        print(f"  {hash_string(url):#010x}  {url}")
    assert len({hash_string(u) for u in family}) == 1

    print("\n== why: swap two characters 27 positions apart ==")
    a = "http://www." + "a" + "x" * 26 + "b" + "/wiki/Guide"
    b = "http://www." + "b" + "x" * 26 + "a" + "/wiki/Guide"
    print(f"  H(a) = {hash_string(a):#010x}")
    print(f"  H(b) = {hash_string(b):#010x}   (offset 5*i mod 27 collides)")

    manager = IndexManager(typed=())
    links = "".join(f"<link>{url}</link>" for url in family)
    manager.load("links", f"<feed>{links}</feed>")

    target = family[2]
    print("\n== candidate sets vs verified answers ==")
    candidates = list(manager.lookup_string(target, verify=False))
    verified = list(manager.lookup_string(target))
    print(f"  hash candidates: {len(candidates)} nodes "
          f"(all five URLs' text+element nodes)")
    print(f"  after verification: {len(verified)} nodes (exact)")
    for nid in verified:
        doc, pre = manager.store.node(nid)
        kind = "element" if doc.kind[pre] == 1 else "text"
        print(f"    {kind}: {doc.string_value(pre)}")
    assert all(
        manager.store.node(n)[0].string_value(manager.store.node(n)[1]) == target
        for n in verified
    )


if __name__ == "__main__":
    main()
