"""Quickstart: index a document, look values up, update, query.

Builds the paper's running example (Figure 1 — a document about a
person whose age is split across mixed content) and walks through the
public API end to end.

Run:  python examples/quickstart.py
"""

from repro import IndexManager
from repro.query import query

PERSON = """\
<person>\
<name><first>Arthur</first><family>Dent</family></name>\
<birthday>1966-09-26</birthday>\
<age><decades>4</decades>2<years/></age>\
<weight><kilos>78</kilos>.<grams>230</grams></weight>\
</person>"""


def describe(manager, nids):
    """Human-readable node descriptions for a list of node ids."""
    out = []
    for nid in nids:
        doc, pre = manager.store.node(nid)
        kind = doc.kind[pre]
        if kind == 1:  # element
            out.append(f"<{doc.name_of(pre)}>")
        elif kind == 2:  # text
            out.append(f"text {doc.text_of(pre)!r}")
        elif kind == 3:  # attribute
            out.append(f"@{doc.name_of(pre)}")
        else:
            out.append("document node")
    return ", ".join(out)


def main():
    # One manager = one store + a string index + typed range indices.
    # No configuration: every node of every document is covered.
    manager = IndexManager(typed=("double", "date"))
    manager.load("person.xml", PERSON)

    print("== string equality lookups (hash index) ==")
    print("  'Arthur'       ->", describe(manager, manager.lookup_string("Arthur")))
    print("  'ArthurDent'   ->", describe(manager, manager.lookup_string("ArthurDent")))

    print("\n== typed lookups: the mixed-content age equals 42 ==")
    hits = list(manager.lookup_typed_equal("double", 42.0))
    print("  double = 42    ->", describe(manager, hits))
    hits = list(manager.lookup_typed_range("double", 70.0, 80.0))
    print("  70 <= d <= 80  ->", [(value, describe(manager, [nid])) for value, nid in hits])

    print("\n== the date index sees the birthday ==")
    birthday = manager.typed_index("date").plugin.value_of_text("1966-09-26")
    print("  date = 1966-09-26 ->", describe(manager, manager.lookup_typed_equal("date", birthday)))

    print("\n== XPath queries (planned over the indices) ==")
    for q in ('//person[.//age = 42]', '//*[fn:data(name)="ArthurDent"]'):
        print(f"  {q} ->", describe(manager, query(manager, q)))

    print("\n== update: Dent -> Prefect (only C-combinations, no re-reads) ==")
    dent = next(
        nid
        for nid in manager.lookup_string("Dent")
        if manager.store.node(nid)[0].kind[manager.store.node(nid)[1]] == 2
    )
    recomputed = manager.update_text(dent, "Prefect")
    print(f"  maintenance touched {recomputed} index entries")
    print("  'ArthurPrefect' ->", describe(manager, manager.lookup_string("ArthurPrefect")))

    print("\n== storage model ==")
    for name, size in manager.index_sizes().items():
        print(f"  {name} index: {size} bytes (db {manager.store.byte_size()} bytes)")


if __name__ == "__main__":
    main()
