"""Mixed content, FSM states, and ancestor-lock-free transactions.

Walks through the machinery of the paper's Section 4 and 5.1 on the
age/weight example: which FSM state each fragment gets, how the SCT
combines them, and how two transactions updating siblings both commit
without ever locking their shared ancestors.

Run:  python examples/mixed_content_transactions.py
"""

from repro import IndexManager, get_plugin
from repro.errors import TransactionConflict
from repro.txn import TransactionManager

PERSON = """\
<person>\
<age><decades>4</decades>2<years/></age>\
<weight><kilos>78</kilos>.<grams>230</grams></weight>\
</person>"""


def main():
    double = get_plugin("double")
    print(f"== the double FSM: {len(double.monoid)} monoid states "
          f"(paper's hand-normalised machine has 60) ==")
    for text in ("78", ".", "230", "E+93 ", "42 text"):
        fragment = double.fragment_of_text(text)
        if fragment.is_rejected:
            print(f"  {text!r:10} -> rejected (stores nothing)")
        else:
            print(f"  {text!r:10} -> state {fragment.state:3}  "
                  f"castable={double.is_castable(fragment)} "
                  f"value={double.cast(fragment)}")

    print("\n== SCT combination: '78' + '.' + '230' ==")
    combined = double.combine_all(
        double.fragment_of_text(t) for t in ("78", ".", "230")
    )
    print(f"  combined state {combined.state}, value {double.cast(combined)}")
    print(f"  rendered lexical form: {double.render(combined.tokens)!r}")

    manager = IndexManager(typed=("double",))
    manager.load("person", PERSON)
    print("\n== element values respect mixed content ==")
    for value in (42.0, 78.230):
        hits = list(manager.lookup_typed_equal("double", value))
        names = []
        for nid in hits:
            doc, pre = manager.store.node(nid)
            names.append(doc.name_of(pre) if doc.kind[pre] == 1 else "#text")
        print(f"  double = {value}: {names}")

    print("\n== transactions: siblings commit without ancestor locks ==")
    txns = TransactionManager(manager)
    doc = manager.store.document("person")
    decades = next(doc.nid[p] for p in range(len(doc))
                   if doc.kind[p] == 2 and doc.text_of(p) == "4")
    kilos = next(doc.nid[p] for p in range(len(doc))
                 if doc.kind[p] == 2 and doc.text_of(p) == "78")

    t1 = txns.begin()
    t2 = txns.begin()
    t1.update_text(decades, "5")  # age becomes 52
    t2.update_text(kilos, "80")  # weight becomes 80.230
    # Both transactions change the hash of <person> and the document
    # node; commutativity of C means neither needs to lock them.
    t1.commit()
    t2.commit()
    print("  both committed; age 52 ->",
          len(list(manager.lookup_typed_equal("double", 52.0))), "hit(s),",
          "weight 80.23 ->",
          len(list(manager.lookup_typed_equal("double", 80.230))), "hit(s)")

    print("\n== true write-write conflicts still abort ==")
    t3 = txns.begin()
    t4 = txns.begin()
    t3.update_text(decades, "6")
    t4.update_text(decades, "7")
    t3.commit()
    try:
        t4.commit()
    except TransactionConflict as exc:
        print(f"  second writer aborted: {exc}")

    manager.check_consistency()
    print("\nindices consistent with a fresh rebuild: OK")


if __name__ == "__main__":
    main()
